"""The cross-layer invariant checker (rules + driver).

CARAT replaces the hardware's translation guarantee with a software one:
the region set, Allocation Table, escape map, page tables, TLBs, frame
allocator, and heap must stay *mutually consistent* through every
move/protect/swap cycle, or guards start giving wrong answers with no
fault.  Each rule here checks one slice of that consistency over a whole
:class:`~repro.kernel.kernel.Kernel` (all processes, both execution
models) and files structured :class:`~repro.sanitizer.violations.Violation`
findings.

The checker only reads.  It walks private structures where no public
snapshot exists, but never calls an accessor that mutates statistics
(memory reads go straight to the backing bytearray so bandwidth counters
stay unperturbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kernel.pagetable import PAGE_SIZE
from repro.kernel.swap import is_noncanonical
from repro.runtime.regions import Region
from repro.sanitizer.shadow import ShadowedEscapeMap
from repro.sanitizer.violations import (
    SEVERITY_WARNING,
    SanitizerReport,
)

__all__ = [
    "CheckContext",
    "InvariantChecker",
    "region_geometry_problems",
]


@dataclass
class CheckContext:
    """Everything a rule may look at for one checkpoint."""

    kernel: object
    #: Thread register snapshots, when the caller has them (a world stop
    #: or a meta-test).  Register coverage is only checkable then — the
    #: kernel-side hooks never see live registers.
    register_snapshots: List[object] = field(default_factory=list)


Rule = Callable[[CheckContext, SanitizerReport], None]


def _read_u64(memory, address: int) -> int:
    # Bypasses the accounting accessors: checking must not perturb the
    # bandwidth counters the benchmarks report.
    return int.from_bytes(memory._data[address : address + 8], "little")


# ----------------------------------------------------------------------
# Region set
# ----------------------------------------------------------------------


def region_geometry_problems(
    regions: Iterable[Region],
) -> List[Tuple[str, int]]:
    """Geometry defects of a region sequence *as stored*: non-positive
    lengths, ordering breaks, overlaps.  Returns (message, subject
    address) pairs; empty means sorted/disjoint/positive.  Shared with
    the property-based tests."""
    problems: List[Tuple[str, int]] = []
    previous: Optional[Region] = None
    for region in regions:
        if region.length <= 0:
            problems.append((f"non-positive length: {region!r}", region.base))
        if previous is not None:
            if region.base < previous.base:
                problems.append(
                    (f"{region!r} stored out of order after {previous!r}",
                     region.base)
                )
            elif region.base < previous.end:
                problems.append(
                    (f"{region!r} overlaps {previous!r}", region.base)
                )
        previous = region
    return problems


def _rule_region_geometry(ctx: CheckContext, report: SanitizerReport) -> None:
    for process in ctx.kernel.processes.values():
        if process.regions is None:
            continue
        for message, subject in region_geometry_problems(process.regions):
            report.add(
                "region-geometry", message, pid=process.pid, subject=subject
            )


# ----------------------------------------------------------------------
# Allocation Table
# ----------------------------------------------------------------------


def _rule_allocation_table(ctx: CheckContext, report: SanitizerReport) -> None:
    for process in ctx.kernel.processes.values():
        runtime = process.runtime
        if runtime is None:
            continue
        try:
            runtime.table.check_invariants()
        except AssertionError as exc:
            report.add(
                "allocation-table",
                f"allocation table structure broken: {exc}",
                pid=process.pid,
            )


def _rule_allocation_coverage(
    ctx: CheckContext, report: SanitizerReport
) -> None:
    """Every live allocation must sit inside the process's permitted
    regions — otherwise its own program would fail a guard on memory it
    legitimately owns.  Swapped-out (non-canonical) allocations are
    deliberately outside every region."""
    for process in ctx.kernel.processes.values():
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            continue
        for allocation in runtime.table:
            if is_noncanonical(allocation.address):
                continue
            cursor = allocation.address
            while cursor < allocation.end:
                region = regions.find(cursor)
                if region is None:
                    report.add(
                        "allocation-coverage",
                        f"{allocation!r} not covered by any region "
                        f"(hole at {cursor:#x})",
                        pid=process.pid,
                        subject=allocation.address,
                    )
                    break
                if region.perms == 0:
                    report.add(
                        "allocation-coverage",
                        f"{allocation!r} covered only by a no-permission "
                        f"region {region!r}",
                        severity=SEVERITY_WARNING,
                        pid=process.pid,
                        subject=allocation.address,
                    )
                cursor = region.end


# ----------------------------------------------------------------------
# Escape map
# ----------------------------------------------------------------------


def _rule_escape_map(ctx: CheckContext, report: SanitizerReport) -> None:
    """Escape-map keys must be Allocation Table bases, and every escape
    location must be a readable cell.  A resolved cell whose pointer now
    targets a *different* allocation is only a warning: stale entries are
    legal by design (the patcher re-validates before patching), but the
    same signature is what a missed rekey looks like."""
    for process in ctx.kernel.processes.values():
        runtime = process.runtime
        if runtime is None:
            continue
        escapes = runtime.escapes
        memory = ctx.kernel.memory
        resolved = dict(escapes.resolved_items())
        pending = set(escapes.pending_locations())
        for base, locations in sorted(resolved.items()):
            if runtime.table.at(base) is None:
                report.add(
                    "escape-map",
                    f"escape set keyed at {base:#x} has no allocation "
                    f"table entry",
                    pid=process.pid,
                    subject=base,
                )
                continue
            allocation = runtime.table.at(base)
            for location in sorted(locations):
                if is_noncanonical(location):
                    continue  # the cell itself is swapped out
                if location < 0 or location + 8 > memory.size:
                    report.add(
                        "escape-map",
                        f"escape location {location:#x} (for allocation "
                        f"{base:#x}) is outside physical memory",
                        pid=process.pid,
                        subject=location,
                    )
                    continue
                value = _read_u64(memory, location)
                target = runtime.table.find_containing(value)
                if target is None or target.address == base:
                    continue  # stale (overwritten cell) or correct
                if location in resolved.get(target.address, ()):
                    continue  # also recorded under the right key
                if location in pending:
                    continue  # re-resolution already queued
                report.add(
                    "escape-map",
                    f"cell {location:#x} is recorded as an escape of "
                    f"{base:#x} but points into {target!r}",
                    severity=SEVERITY_WARNING,
                    pid=process.pid,
                    subject=location,
                )
        for location in sorted(pending):
            if is_noncanonical(location):
                continue
            if location < 0 or location + 8 > memory.size:
                report.add(
                    "escape-map",
                    f"pending escape location {location:#x} is outside "
                    f"physical memory",
                    pid=process.pid,
                    subject=location,
                )


def _rule_escape_shadow(ctx: CheckContext, report: SanitizerReport) -> None:
    for process in ctx.kernel.processes.values():
        runtime = process.runtime
        if runtime is None or not isinstance(runtime.escapes, ShadowedEscapeMap):
            continue
        for message in runtime.escapes.divergences():
            report.add("escape-shadow", message, pid=process.pid)


# ----------------------------------------------------------------------
# Registers
# ----------------------------------------------------------------------


def _rule_register_coverage(
    ctx: CheckContext, report: SanitizerReport
) -> None:
    """Pointer-typed registers must land inside permitted regions after a
    move (null, one-past-end, and swap-encoded values are legitimate).
    Only runs when the caller supplied register snapshots."""
    if not ctx.register_snapshots:
        return
    region_sets = [
        process.regions
        for process in ctx.kernel.processes.values()
        if process.regions is not None
    ]
    if not region_sets:
        return

    def covered(value: int) -> bool:
        return any(
            regions.find(value) is not None or regions.find(value - 1) is not None
            for regions in region_sets
        )

    for snapshot in ctx.register_snapshots:
        for name in sorted(snapshot.pointer_slots):
            value = snapshot.slots.get(name)
            if not value or is_noncanonical(value):
                continue
            if not covered(value):
                report.add(
                    "register-coverage",
                    f"pointer register {name} = {value:#x} points outside "
                    f"every permitted region (missed register patch?)",
                    subject=value,
                )


# ----------------------------------------------------------------------
# Page table / TLB / frames
# ----------------------------------------------------------------------


def _rule_tlb(ctx: CheckContext, report: SanitizerReport) -> None:
    for process in ctx.kernel.processes.values():
        if process.mmu is None or process.page_table is None:
            continue
        for tlb in (process.mmu.dtlb, process.mmu.stlb):
            for vpn, cached in tlb.entries():
                current = process.page_table.lookup(vpn)
                if current is None:
                    report.add(
                        "tlb",
                        f"{tlb.name} caches vpn {vpn:#x} which is no "
                        f"longer mapped (missed shootdown)",
                        pid=process.pid,
                        subject=vpn,
                    )
                elif current.pfn != cached.pfn:
                    report.add(
                        "tlb",
                        f"{tlb.name} entry for vpn {vpn:#x} points at "
                        f"frame {cached.pfn} but the page table says "
                        f"{current.pfn} (stale translation)",
                        pid=process.pid,
                        subject=vpn,
                    )


def _rule_frame_ownership(ctx: CheckContext, report: SanitizerReport) -> None:
    """The frame allocator's idea of "allocated" must equal the union of
    what page tables map and what CARAT regions cover: an allocated frame
    nobody references is leaked; a free frame somebody references is a
    use-after-free waiting to happen.

    Cross-process rule: a frame may be claimed by at most one PID —
    *unless* it is registered with the kernel's CoW share manager, in
    which case exactly the registered member PIDs may map it."""
    kernel = ctx.kernel
    frames = kernel.frames
    total = frames.total_frames
    owners: Dict[int, Tuple[str, int]] = {}
    shares = getattr(kernel, "shares", None)
    shared_owners: Dict[int, set] = (
        shares.shared_frame_owners() if shares is not None else {}
    )
    queued_destinations: set = set()
    move_queue = getattr(kernel, "move_queue", None)
    if move_queue is not None:
        for dest_lo, dest_hi in move_queue.destination_ranges():
            queued_destinations.update(
                range(dest_lo // PAGE_SIZE, (dest_hi + PAGE_SIZE - 1) // PAGE_SIZE)
            )

    def claim(frame: int, owner: str, pid: int) -> None:
        if frame in owners:
            prior_owner, prior_pid = owners[frame]
            members = shared_owners.get(frame)
            if members is not None and pid in members and prior_pid in members:
                return  # registered CoW sharing: multi-ownership is legal
            report.add(
                "frame-ownership",
                f"frame {frame} claimed by both {prior_owner} and {owner}"
                + ("" if members is None else
                   f" but the share table registers only pids {sorted(members)}"),
                pid=pid,
                subject=frame,
            )
        else:
            owners[frame] = (owner, pid)

    for process in kernel.processes.values():
        if process.page_table is not None:
            for vpn, pte in process.page_table.entries():
                if not 0 <= pte.pfn < total:
                    report.add(
                        "frame-ownership",
                        f"vpn {vpn:#x} maps out-of-range frame {pte.pfn}",
                        pid=process.pid,
                        subject=vpn,
                    )
                    continue
                claim(pte.pfn, f"pid {process.pid} vpn {vpn:#x}", process.pid)
        if process.regions is not None:
            covered = set()
            for region in process.regions:
                if is_noncanonical(region.base):
                    continue
                if region.end > kernel.memory.size:
                    report.add(
                        "frame-ownership",
                        f"{region!r} extends past physical memory",
                        pid=process.pid,
                        subject=region.base,
                    )
                    continue
                first = region.base // PAGE_SIZE
                last = (region.end + PAGE_SIZE - 1) // PAGE_SIZE
                covered.update(range(first, last))
            # One process's regions may split mid-page (protection
            # changes), so frames are claimed once per process.
            for frame in sorted(covered):
                claim(frame, f"pid {process.pid} regions", process.pid)

    for frame in range(frames.reserved_low, total):
        owner = owners.get(frame)
        if frames.frame_is_free(frame):
            if owner is not None:
                report.add(
                    "frame-ownership",
                    f"frame {frame} is free but still referenced by "
                    f"{owner[0]}",
                    subject=frame,
                )
        elif owner is None:
            if frame in shared_owners:
                # Canonical hold: the share group keeps its frames
                # allocated even when every member has CoW-broken away,
                # so a late attacher still finds pristine pages.
                continue
            if frame in queued_destinations:
                # In-flight hold: the frame is a claimed destination of a
                # queued/incremental move — no region covers it until the
                # flip installs one, but it is owned, not leaked.
                continue
            report.add(
                "frame-ownership",
                f"allocated frame {frame} is referenced by no page table "
                f"or region (leaked)",
                subject=frame,
            )


def _rule_shared_cow(ctx: CheckContext, report: SanitizerReport) -> None:
    """The CoW share table must stay consistent with the machine:

    * every attached shared page's frame is actually allocated;
    * every member PID is a live process the kernel knows;
    * no member holds *write* permission on a page still attached to a
      share group — a writable shared page lets one tenant silently
      corrupt every other member (the exact bug CoW-breaking exists to
      prevent; the fault injector's ``corrupt_cow_share`` plants it).
    """
    kernel = ctx.kernel
    shares = getattr(kernel, "shares", None)
    if shares is None:
        return
    frames = kernel.frames
    for group in shares.groups.values():
        for pid, page_indices in group.members.items():
            process = kernel.processes.get(pid)
            if process is None:
                report.add(
                    "shared-cow",
                    f"share group {group.key[:12]} lists unknown pid {pid}",
                    pid=pid,
                    subject=group.base,
                )
                continue
            regions = process.regions
            for index in sorted(page_indices):
                address = group.base + index * PAGE_SIZE
                frame = address // PAGE_SIZE
                if frames.frame_is_free(frame):
                    report.add(
                        "shared-cow",
                        f"shared page {address:#x} (group {group.key[:12]}) "
                        f"is attached to pid {pid} but its frame is free",
                        pid=pid,
                        subject=address,
                    )
                if regions is None:
                    continue
                region = regions.find(address)
                if region is not None and region.allows("write"):
                    report.add(
                        "shared-cow",
                        f"pid {pid} holds write permission on CoW-shared "
                        f"page {address:#x} (group {group.key[:12]}) "
                        f"without detaching — other members see its "
                        f"stores",
                        pid=pid,
                        subject=address,
                    )


# ----------------------------------------------------------------------
# Heap
# ----------------------------------------------------------------------


def _rule_heap(ctx: CheckContext, report: SanitizerReport) -> None:
    for process in ctx.kernel.processes.values():
        heap = process.heap
        if heap is None:
            continue
        try:
            heap.check_invariants()
        except AssertionError as exc:
            report.add(
                "heap", f"heap allocator invariant broken: {exc}",
                pid=process.pid,
            )
        runtime = process.runtime
        if runtime is None:
            continue
        for address, size in heap.free_blocks():
            if is_noncanonical(address):
                continue
            for allocation in runtime.table.overlapping(address, address + size):
                if is_noncanonical(allocation.address):
                    continue
                report.add(
                    "heap",
                    f"free heap block [{address:#x}, {address + size:#x}) "
                    f"overlaps live {allocation!r} (double free or lost "
                    f"allocation record)",
                    pid=process.pid,
                    subject=address,
                )


# ----------------------------------------------------------------------
# Translation-client leases (DMA pinning)
# ----------------------------------------------------------------------


def _rule_dma_pin(ctx: CheckContext, report: SanitizerReport) -> None:
    """Guard-free agents make the lease table load-bearing:

    * every live lease must be backed — inside a kernel-permitted
      region of its process, over allocated frames (an agent streaming
      an unbacked range reads bytes nobody owns);
    * **no move may land inside a live lease**: a queued or in-flight
      destination overlapping a lease would copy bytes onto the exact
      range an agent is streaming without guards.  Source overlap is
      legal — the ``quiesce-agents`` protocol step drains it — but a
      destination overlap has no drain point, which is why admission
      refuses it and the ``move_into_lease`` fault (which forges a
      request past admission) must be caught here.
    """
    kernel = ctx.kernel
    agents = getattr(kernel, "agents", None)
    if agents is None:
        return
    frames = kernel.frames
    for lease in agents.live_leases():
        process = kernel.processes.get(lease.pid)
        if process is None or process.regions is None:
            report.add(
                "dma-pin",
                f"{lease.describe()} names pid {lease.pid}, which is not "
                f"a live CARAT process",
                pid=lease.pid,
                subject=lease.lo,
            )
            continue
        if not process.regions.check(lease.lo, lease.length, lease.access):
            report.add(
                "dma-pin",
                f"{lease.describe()} is no longer inside a "
                f"kernel-permitted region",
                pid=lease.pid,
                subject=lease.lo,
            )
        for frame in range(lease.lo // PAGE_SIZE,
                           (lease.hi - 1) // PAGE_SIZE + 1):
            if frames.frame_is_free(frame):
                report.add(
                    "dma-pin",
                    f"{lease.describe()} covers free frame {frame} — the "
                    f"agent is streaming unowned memory",
                    pid=lease.pid,
                    subject=frame * PAGE_SIZE,
                )
                break
    move_queue = getattr(kernel, "move_queue", None)
    if move_queue is not None:
        for dest_lo, dest_hi in move_queue.destination_ranges():
            for lease in agents.leases_overlapping(dest_lo, dest_hi):
                report.add(
                    "dma-pin",
                    f"queued move destination [{dest_lo:#x}, {dest_hi:#x}) "
                    f"overlaps {lease.describe()} — the flip would land "
                    f"bytes under an active guard-free stream",
                    pid=lease.pid,
                    subject=dest_lo,
                )


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------


#: (name, rule) in evaluation order — structural rules first so their
#: findings contextualize the cross-layer ones.
DEFAULT_RULES: List[Tuple[str, Rule]] = [
    ("region-geometry", _rule_region_geometry),
    ("allocation-table", _rule_allocation_table),
    ("allocation-coverage", _rule_allocation_coverage),
    ("escape-map", _rule_escape_map),
    ("escape-shadow", _rule_escape_shadow),
    ("register-coverage", _rule_register_coverage),
    ("tlb", _rule_tlb),
    ("frame-ownership", _rule_frame_ownership),
    ("shared-cow", _rule_shared_cow),
    ("heap", _rule_heap),
    ("dma-pin", _rule_dma_pin),
]


class InvariantChecker:
    """Composable rule set evaluated against a kernel's full state."""

    def __init__(
        self,
        skip: Sequence[str] = (),
        extra_rules: Optional[Sequence[Tuple[str, Rule]]] = None,
    ) -> None:
        self.rules: List[Tuple[str, Rule]] = [
            (name, rule) for name, rule in DEFAULT_RULES if name not in skip
        ]
        if extra_rules:
            self.rules.extend(extra_rules)

    def rule_names(self) -> List[str]:
        return [name for name, _ in self.rules]

    def add_rule(self, name: str, rule: Rule) -> None:
        self.rules.append((name, rule))

    def check_kernel(
        self,
        kernel,
        register_snapshots: Optional[List[object]] = None,
        label: str = "check",
    ) -> SanitizerReport:
        """Run every rule once; returns this checkpoint's report."""
        ctx = CheckContext(kernel, list(register_snapshots or []))
        report = SanitizerReport(label=label)
        for _, rule in self.rules:
            rule(ctx, report)
            report.checks_run += 1
        return report
