"""Deliberate state corruption, to prove the checker has teeth.

Each :class:`FaultInjector` method breaks exactly one cross-layer
invariant the way a real bug would — bypassing the code paths that keep
the structures consistent — and the meta-tests assert the corresponding
:class:`~repro.sanitizer.checker.InvariantChecker` rule flags it.  A
sanitizer that passes clean runs but misses injected faults is
measuring nothing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.pagetable import PAGE_SIZE, PTE
from repro.runtime.patching import RegisterSnapshot
from repro.runtime.regions import Region
from repro.sanitizer.shadow import ShadowedEscapeMap

__all__ = ["FaultInjector"]


class FaultInjector:
    """Corrupts one kernel's state, one invariant at a time."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        #: Human-readable log of the faults injected, in order.
        self.injected: List[str] = []

    # -- region set -------------------------------------------------------

    def overlap_regions(self, process) -> Region:
        """Append a region overlapping an existing one, bypassing the
        validation ``add``/``replace_all`` perform (the pre-fix
        ``replace_all`` bug).  Detected by ``region-geometry``."""
        regions = process.regions
        victim = regions.regions[0]
        rogue = Region(
            victim.base + max(8, victim.length // 2),
            victim.length,
            victim.perms,
        )
        regions._regions.append(rogue)
        regions._regions.sort(key=lambda r: r.base)
        regions.version += 1
        self.injected.append(f"overlap-regions: {rogue!r} over {victim!r}")
        return rogue

    # -- escape map -------------------------------------------------------

    def drop_escape(self, process) -> Tuple[int, int]:
        """Silently forget one resolved escape record, the way a missed
        ``record()`` call would.  The drop goes to the *primary* map only,
        so it is detectable by ``escape-shadow`` (which is the point: no
        other structure knows the record existed)."""
        runtime = process.runtime
        runtime.flush_escapes()
        escapes = runtime.escapes
        primary = (
            escapes._primary
            if isinstance(escapes, ShadowedEscapeMap)
            else escapes
        )
        for base, locations in sorted(primary.resolved_items()):
            if locations:
                location = min(locations)
                primary._escapes[base].discard(location)
                self.injected.append(
                    f"drop-escape: cell {location:#x} of allocation {base:#x}"
                )
                return base, location
        raise ValueError("no resolved escape record to drop")

    # -- registers --------------------------------------------------------

    def skip_register_patch(
        self,
        process,
        allocation=None,
        snapshot: Optional[RegisterSnapshot] = None,
    ) -> RegisterSnapshot:
        """Move the page under a live pointer register without patching
        the register (the snapshot is withheld from the move).  The
        returned snapshot still aims at the old location; feeding it to a
        check is detected by ``register-coverage``."""
        runtime = process.runtime
        if allocation is None:
            allocation = next(
                a for a in runtime.table if a.kind == "heap"
            )
        if snapshot is None:
            # Aim inside the allocation (not at its base): a base pointer
            # at a page boundary is indistinguishable from a legitimate
            # one-past-end pointer into the preceding region, which the
            # coverage rule must tolerate.
            interior = allocation.address + allocation.size // 2
            snapshot = RegisterSnapshot(99, {"rax": interior}, {"rax"})
        page = allocation.address & ~(PAGE_SIZE - 1)
        self.kernel.request_page_move(process, page, 1)
        held = ", ".join(
            f"{snapshot.slots[name]:#x}" for name in sorted(snapshot.pointer_slots)
        )
        self.injected.append(
            f"skip-register-patch: moved page {page:#x}, register still "
            f"holds {held}"
        )
        return snapshot

    # -- TLB --------------------------------------------------------------

    def stale_tlb(self, process) -> int:
        """Plant a DTLB entry whose frame disagrees with the page table
        (a missed shootdown).  Detected by ``tlb``."""
        vpn, pte = next(iter(process.page_table.entries()))
        bogus = PTE(pfn=pte.pfn + 1, flags=pte.flags)
        process.mmu.dtlb.insert(vpn, bogus)
        self.injected.append(
            f"stale-tlb: vpn {vpn:#x} cached with frame {bogus.pfn} "
            f"(page table says {pte.pfn})"
        )
        return vpn

    # -- frames -----------------------------------------------------------

    def leak_frame(self) -> int:
        """Allocate a frame and forget it — no page table maps it, no
        region covers it.  Detected by ``frame-ownership``."""
        frame = self.kernel.frames.alloc()
        self.injected.append(f"leak-frame: frame {frame}")
        return frame
