"""Deliberate state corruption, to prove the checker has teeth.

Each :class:`FaultInjector` method breaks exactly one cross-layer
invariant the way a real bug would — bypassing the code paths that keep
the structures consistent — and the meta-tests assert the corresponding
:class:`~repro.sanitizer.checker.InvariantChecker` rule flags it.  A
sanitizer that passes clean runs but misses injected faults is
measuring nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.kernel.pagetable import PAGE_SIZE, PTE
from repro.resilience.journal import (
    PAGE_MOVE_STEPS,
    TORN_CAPABLE_STEPS,
)
from repro.resilience.retry import InjectedFault, InjectedHang
from repro.runtime.patching import RegisterSnapshot
from repro.runtime.regions import Region
from repro.sanitizer.shadow import ShadowedEscapeMap

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPoint",
    "InjectedFault",
    "InjectedHang",
    "ProtocolFaultInjector",
    "parse_fault_points",
    "random_fault_schedule",
]


class FaultInjector:
    """Corrupts one kernel's state, one invariant at a time."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        #: Human-readable log of the faults injected, in order.
        self.injected: List[str] = []

    # -- region set -------------------------------------------------------

    def overlap_regions(self, process) -> Region:
        """Append a region overlapping an existing one, bypassing the
        validation ``add``/``replace_all`` perform (the pre-fix
        ``replace_all`` bug).  Detected by ``region-geometry``."""
        regions = process.regions
        victim = regions.regions[0]
        rogue = Region(
            victim.base + max(8, victim.length // 2),
            victim.length,
            victim.perms,
        )
        regions._regions.append(rogue)
        regions._regions.sort(key=lambda r: r.base)
        regions.version += 1
        self.injected.append(f"overlap-regions: {rogue!r} over {victim!r}")
        return rogue

    # -- escape map -------------------------------------------------------

    def drop_escape(self, process) -> Tuple[int, int]:
        """Silently forget one resolved escape record, the way a missed
        ``record()`` call would.  The drop goes to the *primary* map only,
        so it is detectable by ``escape-shadow`` (which is the point: no
        other structure knows the record existed)."""
        runtime = process.runtime
        runtime.flush_escapes()
        escapes = runtime.escapes
        primary = (
            escapes._primary
            if isinstance(escapes, ShadowedEscapeMap)
            else escapes
        )
        for base, locations in sorted(primary.resolved_items()):
            if locations:
                location = min(locations)
                primary._escapes[base].discard(location)
                self.injected.append(
                    f"drop-escape: cell {location:#x} of allocation {base:#x}"
                )
                return base, location
        raise ValueError("no resolved escape record to drop")

    # -- registers --------------------------------------------------------

    def skip_register_patch(
        self,
        process,
        allocation=None,
        snapshot: Optional[RegisterSnapshot] = None,
    ) -> RegisterSnapshot:
        """Move the page under a live pointer register without patching
        the register (the snapshot is withheld from the move).  The
        returned snapshot still aims at the old location; feeding it to a
        check is detected by ``register-coverage``."""
        runtime = process.runtime
        if allocation is None:
            allocation = next(
                a for a in runtime.table if a.kind == "heap"
            )
        if snapshot is None:
            # Aim inside the allocation (not at its base): a base pointer
            # at a page boundary is indistinguishable from a legitimate
            # one-past-end pointer into the preceding region, which the
            # coverage rule must tolerate.
            interior = allocation.address + allocation.size // 2
            snapshot = RegisterSnapshot(99, {"rax": interior}, {"rax"})
        page = allocation.address & ~(PAGE_SIZE - 1)
        self.kernel.request_page_move(process, page, 1)
        held = ", ".join(
            f"{snapshot.slots[name]:#x}" for name in sorted(snapshot.pointer_slots)
        )
        self.injected.append(
            f"skip-register-patch: moved page {page:#x}, register still "
            f"holds {held}"
        )
        return snapshot

    # -- TLB --------------------------------------------------------------

    def stale_tlb(self, process) -> int:
        """Plant a DTLB entry whose frame disagrees with the page table
        (a missed shootdown).  Detected by ``tlb``."""
        vpn, pte = next(iter(process.page_table.entries()))
        bogus = PTE(pfn=pte.pfn + 1, flags=pte.flags)
        process.mmu.dtlb.insert(vpn, bogus)
        self.injected.append(
            f"stale-tlb: vpn {vpn:#x} cached with frame {bogus.pfn} "
            f"(page table says {pte.pfn})"
        )
        return vpn

    # -- frames -----------------------------------------------------------

    def leak_frame(self) -> int:
        """Allocate a frame and forget it — no page table maps it, no
        region covers it.  Detected by ``frame-ownership``."""
        frame = self.kernel.frames.alloc()
        self.injected.append(f"leak-frame: frame {frame}")
        return frame

    # -- translation-client leases ----------------------------------------

    def move_into_lease(self, process) -> int:
        """Forge a queued move whose *destination* sits inside a live
        translation-client lease, bypassing the admission check that
        refuses exactly this (the way a racing enqueue-vs-translate bug
        would).  The flip would land bytes under an agent's guard-free
        stream.  Detected by ``dma-pin``."""
        from repro.resilience.movequeue import MoveRequest

        agents = self.kernel.agents
        queue = self.kernel.move_queue
        if agents is None:
            raise ValueError("kernel has no AgentMediator attached")
        if queue is None:
            raise ValueError("kernel has no MoveQueue attached")
        leases = agents.live_leases()
        if not leases:
            raise ValueError("no live lease to collide with")
        lease = leases[0]
        destination = lease.lo & ~(PAGE_SIZE - 1)
        victim = next(
            a for a in process.runtime.table if a.kind == "heap" and a.live
        )
        forged = MoveRequest(
            process=process,
            lo=victim.address & ~(PAGE_SIZE - 1),
            page_count=1,
            destination=destination,
            destination_claimed=True,
        )
        queue.pending.append(forged)  # straight past enqueue()'s admission
        self.injected.append(
            f"move-into-lease: destination {destination:#x} inside "
            f"{lease.describe()}"
        )
        return destination

    # -- CoW sharing ------------------------------------------------------

    def corrupt_cow_share(self, process) -> int:
        """Grant ``process`` write permission on one of its CoW-shared
        pages *without* detaching it from the share group — the stores of
        one tenant would silently reach every other member.  Detected by
        ``shared-cow``."""
        from repro.runtime.regions import PERM_RWX

        shares = self.kernel.shares
        if shares is None:
            raise ValueError("kernel has no ShareManager attached")
        for group in shares.groups.values():
            indices = group.members.get(process.pid)
            if indices:
                index = min(indices)
                address = group.base + index * PAGE_SIZE
                process.regions.set_range_perms(
                    address, address + PAGE_SIZE, PERM_RWX
                )
                self.injected.append(
                    f"corrupt-cow-share: pid {process.pid} made shared "
                    f"page {address:#x} writable without detaching"
                )
                return address
        raise ValueError(f"pid {process.pid} has no attached shared pages")


# ---------------------------------------------------------------------------
# Step-targeted protocol fault injection (the resilience campaign)
# ---------------------------------------------------------------------------

#: The fault classes a :class:`FaultPoint` can inject.
FAULT_KINDS = ("crash", "hang", "torn")


@dataclass
class FaultPoint:
    """Fail at Figure 8 step ``step`` on the ``move_index``-th move.

    ``kind`` is one of :data:`FAULT_KINDS`: ``crash`` and ``hang`` fire
    at step *entry*; ``torn`` fires mid-step, after roughly half the
    step's items completed (only the steps in
    :data:`~repro.resilience.journal.TORN_CAPABLE_STEPS` have items).
    ``move_index`` counts kernel-level change *requests* (retries of one
    request share its index); ``None`` matches any.  Points are one-shot
    — consumed when they fire, so the retry succeeds — unless
    ``persistent``, which re-fires on every retry and exercises the
    exhaustion/degradation path.
    """

    step: str
    kind: str = "crash"
    move_index: Optional[int] = None
    persistent: bool = False
    #: ``hang`` only: how long the stuck step stalls.
    stall_cycles: int = 1_000_000_000
    #: ``torn`` only: fire after exactly this many items; ``None`` means
    #: half the step's items (at least one).
    torn_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


class ProtocolFaultInjector:
    """Kills the move protocol at chosen steps, deterministically.

    Attach to a kernel via :meth:`Kernel.attach_fault_injector`.  The
    transaction layer calls :meth:`begin_move` once per change request
    and :meth:`on_step` at every step boundary and mid-step progress
    point.  ``rng`` is a *seeded* ``random.Random`` instance supplied by
    the caller — this module never touches the ``random`` module's
    global state — and is only consulted by helpers that build random
    schedules (:func:`random_fault_schedule`, ``random:N`` CLI specs).
    """

    def __init__(self, points, rng=None) -> None:
        self.points: List[FaultPoint] = list(points)
        self.rng = rng
        #: Human-readable log of the faults that actually fired.
        self.fired: List[str] = []
        self.move_index = -1

    def begin_move(self) -> None:
        """A new kernel-level change request is starting."""
        self.move_index += 1

    def on_step(
        self, step: str, progress: Optional[Tuple[int, int]] = None
    ) -> None:
        """Fire any matching fault point.  ``progress`` is ``None`` at a
        step boundary, or ``(items_done, items_total)`` mid-step."""
        for point in self.points:
            if point.step != step:
                continue
            if (
                point.move_index is not None
                and point.move_index != self.move_index
            ):
                continue
            if point.kind == "torn":
                if progress is None:
                    continue
                done, total = progress
                if total <= 0:
                    continue
                threshold = (
                    point.torn_after
                    if point.torn_after is not None
                    else max(1, total // 2)
                )
                if done != threshold:
                    continue
            elif progress is not None:
                continue  # crash/hang fire at step entry only
            if not point.persistent:
                self.points.remove(point)
            self.fired.append(f"{step}:{point.kind}@move{self.move_index}")
            if point.kind == "hang":
                raise InjectedHang(step, point.stall_cycles)
            raise InjectedFault(step, point.kind)

    __call__ = on_step


def parse_fault_points(spec: str, rng=None) -> List[FaultPoint]:
    """Parse a CLI ``--inject-faults`` spec into fault points.

    Comma-separated entries of ``STEP:KIND[:MOVE][:persist]`` — e.g.
    ``copy-data:crash``, ``patch-escapes:torn:0``,
    ``region-install:hang:2:persist`` — or ``random:N`` for ``N``
    rng-drawn points (requires a seeded ``rng``).
    """
    points: List[FaultPoint] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if parts[0] == "random":
            count = int(parts[1]) if len(parts) > 1 else 1
            if rng is None:
                raise ValueError("random fault specs need a seeded rng")
            points.extend(random_fault_schedule(rng, count))
            continue
        step = parts[0]
        kind = parts[1] if len(parts) > 1 else "crash"
        move_index: Optional[int] = None
        persistent = False
        for extra in parts[2:]:
            if extra == "persist":
                persistent = True
            elif extra == "any":
                move_index = None
            else:
                move_index = int(extra)
        points.append(
            FaultPoint(
                step=step,
                kind=kind,
                move_index=move_index,
                persistent=persistent,
            )
        )
    return points


def random_fault_schedule(
    rng, count: int = 1, max_move_index: int = 4
) -> List[FaultPoint]:
    """``count`` fault points drawn from a seeded ``random.Random`` —
    the property-test/CLI source of randomized campaigns."""
    points: List[FaultPoint] = []
    for _ in range(count):
        kind = rng.choice(FAULT_KINDS)
        step = rng.choice(
            sorted(TORN_CAPABLE_STEPS) if kind == "torn" else PAGE_MOVE_STEPS
        )
        points.append(
            FaultPoint(
                step=step,
                kind=kind,
                move_index=rng.randrange(max_move_index),
                persistent=rng.random() < 0.25,
            )
        )
    return points
