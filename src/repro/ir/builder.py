"""Convenience builder for constructing IR.

The builder holds an insertion point (a block, optionally a position within
it) and exposes one method per instruction.  Values are auto-named from a
per-function counter so that printed IR is readable and unique.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import FloatType, IntType, Type, F64, I1, I64
from repro.ir.values import ConstantFloat, ConstantInt, Value


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self._block = block
        self._anchor: Optional[Instruction] = None  # insert before this

    # -- positioning -----------------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no insertion block")
        return self._block

    @property
    def function(self) -> Function:
        return self.block.parent

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block
        self._anchor = None

    def position_before(self, inst: Instruction) -> None:
        if inst.parent is None:
            raise IRError("cannot position before a detached instruction")
        self._block = inst.parent
        self._anchor = inst

    def position_at_start(self, block: BasicBlock) -> None:
        self._block = block
        self._anchor = block.instructions[0] if block.instructions else None

    def append_block(self, name: str = "bb") -> BasicBlock:
        return self.function.add_block(name)

    # -- insertion core ----------------------------------------------------------

    def _insert(self, inst: Instruction, name: str = "") -> Instruction:
        if name:
            inst.name = self.function.unique_name(name)
        elif not inst.type.is_void and not inst.name:
            inst.name = self.function.unique_name("v")
        if self._anchor is not None:
            self.block.insert_before(self._anchor, inst)
        else:
            self.block.append(inst)
        return inst

    # -- constants ---------------------------------------------------------------

    def const(self, ty: Type, value: Union[int, float]) -> Value:
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(value))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(value))
        raise IRError(f"cannot build a constant of type {ty}")

    def i64(self, value: int) -> ConstantInt:
        return ConstantInt(I64, value)

    def true(self) -> ConstantInt:
        return ConstantInt(I1, 1)

    def false(self) -> ConstantInt:
        return ConstantInt(I1, 0)

    def f64(self, value: float) -> ConstantFloat:
        return ConstantFloat(F64, value)

    # -- memory --------------------------------------------------------------------

    def alloca(
        self, ty: Type, count: Optional[Value] = None, name: str = ""
    ) -> AllocaInst:
        return self._insert(AllocaInst(ty, count), name or "a")  # type: ignore[return-value]

    def load(self, pointer: Value, name: str = "") -> LoadInst:
        return self._insert(LoadInst(pointer), name or "ld")  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self._insert(StoreInst(value, pointer))  # type: ignore[return-value]

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> GEPInst:
        return self._insert(GEPInst(pointer, indices), name or "gep")  # type: ignore[return-value]

    # -- arithmetic -------------------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._insert(BinaryInst(op, lhs, rhs), name or op)  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("lshr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binop("fdiv", lhs, rhs, name)

    # -- comparisons ---------------------------------------------------------------------

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(pred, lhs, rhs), name or "cmp")  # type: ignore[return-value]

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> FCmpInst:
        return self._insert(FCmpInst(pred, lhs, rhs), name or "fcmp")  # type: ignore[return-value]

    # -- casts -----------------------------------------------------------------------------

    def cast(self, op: str, value: Value, dest: Type, name: str = "") -> CastInst:
        return self._insert(CastInst(op, value, dest), name or op)  # type: ignore[return-value]

    def trunc(self, value: Value, dest: Type, name: str = "") -> CastInst:
        return self.cast("trunc", value, dest, name)

    def zext(self, value: Value, dest: Type, name: str = "") -> CastInst:
        return self.cast("zext", value, dest, name)

    def sext(self, value: Value, dest: Type, name: str = "") -> CastInst:
        return self.cast("sext", value, dest, name)

    def bitcast(self, value: Value, dest: Type, name: str = "") -> CastInst:
        return self.cast("bitcast", value, dest, name)

    def ptrtoint(self, value: Value, dest: Type = I64, name: str = "") -> CastInst:
        return self.cast("ptrtoint", value, dest, name)

    def inttoptr(self, value: Value, dest: Type, name: str = "") -> CastInst:
        return self.cast("inttoptr", value, dest, name)

    def sitofp(self, value: Value, dest: Type = F64, name: str = "") -> CastInst:
        return self.cast("sitofp", value, dest, name)

    def fptosi(self, value: Value, dest: Type = I64, name: str = "") -> CastInst:
        return self.cast("fptosi", value, dest, name)

    # -- control flow ---------------------------------------------------------------------

    def br(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target))  # type: ignore[return-value]

    def cond_br(
        self, cond: Value, if_true: BasicBlock, if_false: BasicBlock
    ) -> BranchInst:
        return self._insert(BranchInst(if_true, cond, if_false))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value))  # type: ignore[return-value]

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())  # type: ignore[return-value]

    # -- misc --------------------------------------------------------------------------------

    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> CallInst:
        inst = CallInst(callee, args)
        hint = name or ("" if inst.type.is_void else "call")
        return self._insert(inst, hint)  # type: ignore[return-value]

    def phi(self, ty: Type, name: str = "") -> PhiInst:
        inst = PhiInst(ty)
        if name:
            inst.name = self.function.unique_name(name)
        else:
            inst.name = self.function.unique_name("phi")
        # Phis must be grouped at the start of the block.
        index = self.block.first_non_phi_index()
        self.block.insert(index, inst)
        return inst

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> SelectInst:
        return self._insert(SelectInst(cond, a, b), name or "sel")  # type: ignore[return-value]
