"""IR instruction set.

Each instruction is a :class:`~repro.ir.values.Value` whose operands are
other values.  Operand slots keep use-def chains consistent through
:meth:`Instruction.set_operand`, which is the only sanctioned way to mutate
an operand after construction.

The opcode vocabulary deliberately mirrors LLVM: ``alloca``, ``load``,
``store``, ``getelementptr``, integer/float arithmetic, comparisons, casts,
``call``, ``br``, ``ret``, ``phi``, ``select``, and ``unreachable``.  That
is the entire surface the CARAT passes need: guard injection looks at
loads/stores/calls, tracking looks at calls and pointer-typed stores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IRError, IRTypeError
from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    I1,
    I64,
    VOID,
    ptr,
    size_of,
    stride_of,
    struct_field_offset,
)
from repro.ir.values import ConstantInt, Use, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock, Function


INT_BINARY_OPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "udiv",
        "srem",
        "urem",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    }
)

FLOAT_BINARY_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "frem"})

ICMP_PREDICATES = frozenset(
    {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
)

FCMP_PREDICATES = frozenset({"oeq", "one", "olt", "ole", "ogt", "oge"})

CAST_OPS = frozenset(
    {
        "trunc",
        "zext",
        "sext",
        "bitcast",
        "ptrtoint",
        "inttoptr",
        "sitofp",
        "fptosi",
    }
)


class Instruction(Value):
    """Base class of all instructions."""

    __slots__ = ("opcode", "_operands", "parent")

    def __init__(
        self,
        opcode: str,
        ty: Type,
        operands: Sequence[Value],
        name: str = "",
    ) -> None:
        super().__init__(ty, name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        self._operands: List[Value] = []
        for operand in operands:
            self._append_operand(operand)

    # -- operand management ---------------------------------------------------

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(Use(self, index))

    def _pop_operand(self) -> Value:
        index = len(self._operands) - 1
        value = self._operands.pop()
        value._remove_use(self, index)
        return value

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(Use(self, index))

    def drop_all_operands(self) -> None:
        while self._operands:
            self._pop_operand()

    # -- block linkage ---------------------------------------------------------

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and sever all operand uses.

        The instruction must itself be unused.
        """
        if self.num_uses:
            raise IRError(
                f"cannot erase {self.name!r}: it still has {self.num_uses} use(s)"
            )
        if self.parent is None:
            raise IRError(f"instruction {self.name!r} has no parent")
        self.parent.remove(self)
        self.drop_all_operands()

    @property
    def function(self) -> "Function":
        if self.parent is None:
            raise IRError(f"instruction {self.name!r} is detached")
        return self.parent.parent

    # -- classification ----------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (BranchInst, ReturnInst, UnreachableInst))

    @property
    def is_memory_access(self) -> bool:
        return isinstance(self, (LoadInst, StoreInst))

    def may_write_memory(self) -> bool:
        if isinstance(self, StoreInst):
            return True
        if isinstance(self, CallInst):
            return not self.is_readonly_call()
        return False

    def may_read_memory(self) -> bool:
        if isinstance(self, LoadInst):
            return True
        if isinstance(self, CallInst):
            return True
        return False

    def has_side_effects(self) -> bool:
        return (
            self.may_write_memory()
            or self.is_terminator
            or isinstance(self, (CallInst, StoreInst))
        )

    def is_readonly_call(self) -> bool:
        return False

    def __repr__(self) -> str:
        ops = ", ".join(o.ref() for o in self._operands)
        lhs = f"%{self.name} = " if not self.type.is_void else ""
        return f"<{lhs}{self.opcode} {ops}>"


class AllocaInst(Instruction):
    """Stack allocation of ``count`` items of ``allocated_type``."""

    __slots__ = ("allocated_type",)

    def __init__(
        self, allocated_type: Type, count: Optional[Value] = None, name: str = ""
    ) -> None:
        if count is None:
            count = ConstantInt(I64, 1)
        if not isinstance(count.type, IntType):
            raise IRTypeError(f"alloca count must be an integer, got {count.type}")
        super().__init__("alloca", ptr(allocated_type), [count], name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value:
        return self.operand(0)

    @property
    def is_static(self) -> bool:
        return isinstance(self.count, ConstantInt)

    def allocation_size(self) -> Optional[int]:
        """Static byte size, or None for dynamic allocas."""
        if isinstance(self.count, ConstantInt):
            return stride_of(self.allocated_type) * self.count.value
        return None


class LoadInst(Instruction):
    __slots__ = ()

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRTypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__("load", pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    def access_size(self) -> int:
        return size_of(self.type)


class StoreInst(Instruction):
    __slots__ = ()

    def __init__(self, value: Value, pointer: Value) -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRTypeError(f"store requires a pointer operand, got {pointer.type}")
        if pointer.type.pointee != value.type:
            raise IRTypeError(
                f"store type mismatch: storing {value.type} through {pointer.type}"
            )
        super().__init__("store", VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    def access_size(self) -> int:
        return size_of(self.value.type)

    def stores_pointer(self) -> bool:
        """True when the stored value is itself a pointer — i.e. a potential
        *escape* in CARAT's sense (Section 4.1.2)."""
        return self.value.type.is_pointer


class GEPInst(Instruction):
    """``getelementptr``: pointer arithmetic over typed aggregates.

    The first index scales by the whole pointee; subsequent indices step
    into arrays and structs, exactly as in LLVM.  Struct indices must be
    constants.
    """

    __slots__ = ("source_type",)

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        if not isinstance(pointer.type, PointerType):
            raise IRTypeError(f"gep requires a pointer operand, got {pointer.type}")
        if not indices:
            raise IRTypeError("gep requires at least one index")
        source_type = pointer.type.pointee
        result = GEPInst.compute_result_type(source_type, indices)
        super().__init__("getelementptr", ptr(result), [pointer, *indices], name)
        self.source_type = source_type

    @staticmethod
    def compute_result_type(source: Type, indices: Sequence[Value]) -> Type:
        current = source
        for i, index in enumerate(indices):
            if i == 0:
                if not isinstance(index.type, IntType):
                    raise IRTypeError("gep indices must be integers")
                continue
            if isinstance(current, ArrayType):
                if not isinstance(index.type, IntType):
                    raise IRTypeError("gep array index must be an integer")
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    raise IRTypeError("gep struct index must be a constant int")
                if index.value < 0 or index.value >= len(current.fields):
                    raise IRTypeError(
                        f"gep struct index {index.value} out of range for {current}"
                    )
                current = current.fields[index.value]
            else:
                raise IRTypeError(f"gep cannot index into {current}")
        return current

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Tuple[Value, ...]:
        return self.operands[1:]

    def has_all_constant_indices(self) -> bool:
        return all(isinstance(i, ConstantInt) for i in self.indices)

    def constant_offset(self) -> Optional[int]:
        """Byte offset from the base pointer when all indices are constant."""
        if not self.has_all_constant_indices():
            return None
        offset = 0
        current: Type = self.source_type
        for i, index in enumerate(self.indices):
            assert isinstance(index, ConstantInt)
            if i == 0:
                offset += index.value * stride_of(current)
                continue
            if isinstance(current, ArrayType):
                offset += index.value * stride_of(current.element)
                current = current.element
            elif isinstance(current, StructType):
                offset += struct_field_offset(current, index.value)
                current = current.fields[index.value]
            else:  # pragma: no cover - rejected at construction
                raise IRTypeError(f"gep cannot index into {current}")
        return offset


class BinaryInst(Instruction):
    __slots__ = ()

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op in INT_BINARY_OPS:
            if not isinstance(lhs.type, IntType):
                raise IRTypeError(f"{op} requires integer operands, got {lhs.type}")
        elif op in FLOAT_BINARY_OPS:
            if not isinstance(lhs.type, FloatType):
                raise IRTypeError(f"{op} requires float operands, got {lhs.type}")
        else:
            raise IRTypeError(f"unknown binary opcode: {op}")
        if lhs.type != rhs.type:
            raise IRTypeError(
                f"{op} operand types differ: {lhs.type} vs {rhs.type}"
            )
        super().__init__(op, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_commutative(self) -> bool:
        return self.opcode in {"add", "mul", "and", "or", "xor", "fadd", "fmul"}


class ICmpInst(Instruction):
    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise IRTypeError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise IRTypeError(
                f"icmp operand types differ: {lhs.type} vs {rhs.type}"
            )
        if not (lhs.type.is_integer or lhs.type.is_pointer):
            raise IRTypeError(f"icmp requires int or pointer operands, got {lhs.type}")
        super().__init__("icmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class FCmpInst(Instruction):
    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in FCMP_PREDICATES:
            raise IRTypeError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type or not lhs.type.is_float:
            raise IRTypeError("fcmp requires matching float operands")
        super().__init__("fcmp", I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class CastInst(Instruction):
    __slots__ = ()

    def __init__(self, op: str, value: Value, dest: Type, name: str = "") -> None:
        if op not in CAST_OPS:
            raise IRTypeError(f"unknown cast opcode: {op}")
        self._check(op, value.type, dest)
        super().__init__(op, dest, [value], name)

    @staticmethod
    def _check(op: str, src: Type, dest: Type) -> None:
        if op == "trunc":
            if not (src.is_integer and dest.is_integer and src.bits > dest.bits):
                raise IRTypeError(f"invalid trunc: {src} -> {dest}")
        elif op in ("zext", "sext"):
            if not (src.is_integer and dest.is_integer and src.bits < dest.bits):
                raise IRTypeError(f"invalid {op}: {src} -> {dest}")
        elif op == "bitcast":
            if not (src.is_pointer and dest.is_pointer):
                raise IRTypeError(f"bitcast supports only pointers: {src} -> {dest}")
        elif op == "ptrtoint":
            if not (src.is_pointer and dest.is_integer):
                raise IRTypeError(f"invalid ptrtoint: {src} -> {dest}")
        elif op == "inttoptr":
            if not (src.is_integer and dest.is_pointer):
                raise IRTypeError(f"invalid inttoptr: {src} -> {dest}")
        elif op == "sitofp":
            if not (src.is_integer and dest.is_float):
                raise IRTypeError(f"invalid sitofp: {src} -> {dest}")
        elif op == "fptosi":
            if not (src.is_float and dest.is_integer):
                raise IRTypeError(f"invalid fptosi: {src} -> {dest}")

    @property
    def value(self) -> Value:
        return self.operand(0)


class CallInst(Instruction):
    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value], name: str = "") -> None:
        ftype = CallInst._callee_type(callee)
        if ftype.vararg:
            if len(args) < len(ftype.params):
                raise IRTypeError(
                    f"call to {callee.name}: expected at least "
                    f"{len(ftype.params)} args, got {len(args)}"
                )
        elif len(args) != len(ftype.params):
            raise IRTypeError(
                f"call to {callee.name}: expected {len(ftype.params)} args, "
                f"got {len(args)}"
            )
        for i, (arg, pty) in enumerate(zip(args, ftype.params)):
            if arg.type != pty:
                raise IRTypeError(
                    f"call to {callee.name}: arg {i} has type {arg.type}, "
                    f"expected {pty}"
                )
        super().__init__("call", ftype.ret, [callee, *args], name)

    @staticmethod
    def _callee_type(callee: Value) -> FunctionType:
        from repro.ir.module import Function

        if isinstance(callee, Function):
            return callee.ftype
        if isinstance(callee.type, PointerType) and isinstance(
            callee.type.pointee, FunctionType
        ):
            return callee.type.pointee
        raise IRTypeError(f"call target is not a function: {callee.type}")

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands[1:]

    @property
    def callee_name(self) -> Optional[str]:
        from repro.ir.module import Function

        if isinstance(self.callee, Function):
            return self.callee.name
        return None

    def is_intrinsic(self, prefix: str = "carat.") -> bool:
        name = self.callee_name
        return name is not None and name.startswith(prefix)

    def is_readonly_call(self) -> bool:
        """CARAT intrinsics and a few whitelisted pure functions never write
        program-visible memory, so passes may reorder around them."""
        name = self.callee_name
        if name is None:
            return False
        return name.startswith("carat.guard") or name in _PURE_FUNCTIONS


_PURE_FUNCTIONS = frozenset({"llvm.sqrt", "sqrt", "exp", "log", "abs", "fabs"})


class BranchInst(Instruction):
    """Conditional (``br i1 %c, %then, %else``) or unconditional branch."""

    __slots__ = ()

    def __init__(
        self,
        target: "BasicBlock",
        cond: Optional[Value] = None,
        if_false: Optional["BasicBlock"] = None,
    ) -> None:
        from repro.ir.module import BasicBlock

        if cond is None:
            if if_false is not None:
                raise IRError("unconditional branch cannot have a false target")
            super().__init__("br", VOID, [target])
        else:
            if cond.type != I1:
                raise IRTypeError(f"branch condition must be i1, got {cond.type}")
            if if_false is None:
                raise IRError("conditional branch requires a false target")
            super().__init__("br", VOID, [cond, target, if_false])

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise IRError("unconditional branch has no condition")
        return self.operand(0)

    @property
    def targets(self) -> Tuple["BasicBlock", ...]:
        if self.is_conditional:
            return (self.operand(1), self.operand(2))  # type: ignore[return-value]
        return (self.operand(0),)  # type: ignore[return-value]


class ReturnInst(Instruction):
    __slots__ = ()

    def __init__(self, value: Optional[Value] = None) -> None:
        operands = [] if value is None else [value]
        super().__init__("ret", VOID, operands)

    @property
    def return_value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None


class PhiInst(Instruction):
    """SSA phi node.  Operands alternate ``value0, block0, value1, block1...``"""

    __slots__ = ()

    def __init__(self, ty: Type, name: str = "") -> None:
        super().__init__("phi", ty, [], name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise IRTypeError(
                f"phi incoming type {value.type} != phi type {self.type}"
            )
        self._append_operand(value)
        self._append_operand(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        pairs = []
        for i in range(0, self.num_operands, 2):
            pairs.append((self.operand(i), self.operand(i + 1)))
        return pairs  # type: ignore[return-value]

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise IRError(f"phi {self.name!r} has no incoming value for {block.name!r}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        pairs = [(v, b) for v, b in self.incoming if b is not block]
        if len(pairs) == len(self.incoming):
            raise IRError(f"phi {self.name!r} has no entry for {block.name!r}")
        self.drop_all_operands()
        for value, pred in pairs:
            self._append_operand(value)
            self._append_operand(pred)

    def set_incoming_value(self, block: "BasicBlock", value: Value) -> None:
        for i in range(0, self.num_operands, 2):
            if self.operand(i + 1) is block:
                self.set_operand(i, value)
                return
        raise IRError(f"phi {self.name!r} has no entry for {block.name!r}")


class SelectInst(Instruction):
    __slots__ = ()

    def __init__(self, cond: Value, a: Value, b: Value, name: str = "") -> None:
        if cond.type != I1:
            raise IRTypeError(f"select condition must be i1, got {cond.type}")
        if a.type != b.type:
            raise IRTypeError(f"select arm types differ: {a.type} vs {b.type}")
        super().__init__("select", a.type, [cond, a, b], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


class UnreachableInst(Instruction):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("unreachable", VOID, [])
