"""IR type system.

A small, LLVM-flavoured type lattice: integers of arbitrary bit width,
a 64-bit float, pointers, fixed arrays, named/literal structs, functions,
and void.  Types are immutable and interned where cheap, so identity
comparison usually works, but ``==`` is always structural.

The data layout (``size_of`` / ``align_of``) models a 64-bit machine:
pointers are 8 bytes, structs use natural alignment with padding.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import IRTypeError


class Type:
    """Base class of all IR types."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - overridden
        return id(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_first_class(self) -> bool:
        """True for types a register (SSA value) can hold."""
        return not isinstance(self, (VoidType, FunctionType))


class VoidType(Type):
    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """An integer of ``bits`` width.  i1 doubles as the boolean type."""

    __slots__ = ("bits",)

    _cache: dict = {}

    def __new__(cls, bits: int) -> "IntType":
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        if bits < 1 or bits > 128:
            raise IRTypeError(f"unsupported integer width: {bits}")
        self = super().__new__(cls)
        self.bits = bits
        cls._cache[bits] = self
        return self

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Truncate ``value`` to this width, returning the signed result."""
        masked = value & self.max_unsigned
        if masked > self.max_signed:
            masked -= 1 << self.bits
        return masked

    def wrap_unsigned(self, value: int) -> int:
        return value & self.max_unsigned


class FloatType(Type):
    """An IEEE-754 float; only f64 is used by the frontend."""

    __slots__ = ("bits",)

    _cache: dict = {}

    def __new__(cls, bits: int = 64) -> "FloatType":
        cached = cls._cache.get(bits)
        if cached is not None:
            return cached
        if bits not in (32, 64):
            raise IRTypeError(f"unsupported float width: {bits}")
        self = super().__new__(cls)
        self.bits = bits
        cls._cache[bits] = self
        return self

    def __str__(self) -> str:
        return "f32" if self.bits == 32 else "f64"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))


class PointerType(Type):
    """A pointer to ``pointee``.  All pointers are 8 bytes."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type) -> None:
        if isinstance(pointee, VoidType):
            raise IRTypeError("pointer to void is not allowed; use ptr(i8)")
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """A fixed-length array ``[count x element]``."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int) -> None:
        if count < 0:
            raise IRTypeError(f"negative array length: {count}")
        if not element.is_first_class and not element.is_aggregate:
            raise IRTypeError(f"invalid array element type: {element}")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.count == self.count
            and other.element == self.element
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class StructType(Type):
    """A struct with named fields.

    Structs may be *named* (``%struct.foo``) in which case equality is by
    name, enabling recursive types, or *literal* in which case equality is
    structural.
    """

    __slots__ = ("name", "fields", "field_names")

    def __init__(
        self,
        fields: Sequence[Type],
        name: Optional[str] = None,
        field_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.fields: Tuple[Type, ...] = tuple(fields)
        self.name = name
        if field_names is None:
            field_names = tuple(f"f{i}" for i in range(len(self.fields)))
        if len(field_names) != len(self.fields):
            raise IRTypeError("field_names length must match fields length")
        self.field_names: Tuple[str, ...] = tuple(field_names)

    def __str__(self) -> str:
        if self.name:
            return f"%struct.{self.name}"
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return False
        if self.name or other.name:
            return self.name == other.name
        return self.fields == other.fields

    def __hash__(self) -> int:
        if self.name:
            return hash(("struct", self.name))
        return hash(("struct", self.fields))

    def field_index(self, name: str) -> int:
        try:
            return self.field_names.index(name)
        except ValueError:
            raise IRTypeError(f"struct {self} has no field named {name!r}")


class FunctionType(Type):
    __slots__ = ("ret", "params", "vararg")

    def __init__(self, ret: Type, params: Iterable[Type], vararg: bool = False) -> None:
        self.ret = ret
        self.params: Tuple[Type, ...] = tuple(params)
        self.vararg = vararg
        for p in self.params:
            if not p.is_first_class:
                raise IRTypeError(f"invalid parameter type: {p}")

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params, self.vararg))


# Interned singletons used throughout the code base.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType(64)

POINTER_SIZE = 8
POINTER_ALIGN = 8


def ptr(pointee: Type) -> PointerType:
    """Shorthand constructor for :class:`PointerType`."""
    return PointerType(pointee)


def size_of(ty: Type) -> int:
    """Byte size of ``ty`` under the 64-bit data layout."""
    if isinstance(ty, IntType):
        return max(1, (ty.bits + 7) // 8)
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return POINTER_SIZE
    if isinstance(ty, ArrayType):
        return ty.count * stride_of(ty.element)
    if isinstance(ty, StructType):
        offset = 0
        for field in ty.fields:
            align = align_of(field)
            offset = _round_up(offset, align) + size_of(field)
        return _round_up(offset, align_of(ty))
    raise IRTypeError(f"type has no size: {ty}")


def align_of(ty: Type) -> int:
    """Natural alignment of ``ty``."""
    if isinstance(ty, IntType):
        return min(8, max(1, (ty.bits + 7) // 8))
    if isinstance(ty, FloatType):
        return ty.bits // 8
    if isinstance(ty, PointerType):
        return POINTER_ALIGN
    if isinstance(ty, ArrayType):
        return align_of(ty.element)
    if isinstance(ty, StructType):
        return max((align_of(f) for f in ty.fields), default=1)
    raise IRTypeError(f"type has no alignment: {ty}")


def stride_of(ty: Type) -> int:
    """Size of one array element including tail padding."""
    return _round_up(size_of(ty), align_of(ty))


def struct_field_offset(ty: StructType, index: int) -> int:
    """Byte offset of field ``index`` within struct ``ty``."""
    if index < 0 or index >= len(ty.fields):
        raise IRTypeError(f"struct {ty} has no field index {index}")
    offset = 0
    for i, field in enumerate(ty.fields):
        offset = _round_up(offset, align_of(field))
        if i == index:
            return offset
        offset += size_of(field)
    raise AssertionError("unreachable")


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
