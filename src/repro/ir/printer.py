"""Textual IR printer.

Produces an LLVM-flavoured rendering that :mod:`repro.ir.parser` can read
back, which the test suite uses for round-trip checks.  The format is also
what examples and error messages show to humans.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import (
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)


def print_module(module: Module) -> str:
    lines: List[str] = [f"; module: {module.name}"]
    for st in module.struct_types.values():
        fields = ", ".join(str(f) for f in st.fields)
        lines.append(f"%struct.{st.name} = type {{ {fields} }}")
    if module.struct_types:
        lines.append("")
    for gv in module.globals.values():
        lines.append(print_global(gv))
    if module.globals:
        lines.append("")
    for fn in module.functions.values():
        if fn.is_declaration:
            lines.append(print_declaration(fn))
    for fn in module.functions.values():
        if not fn.is_declaration:
            lines.append("")
            lines.append(print_function(fn))
    return "\n".join(lines) + "\n"


def print_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.is_constant else "global"
    if gv.initializer is None:
        return f"@{gv.name} = {kind} {gv.value_type} undef"
    return f"@{gv.name} = {kind} {gv.value_type} {print_constant(gv.initializer)}"


def print_constant(constant: Constant) -> str:
    if isinstance(constant, ConstantInt):
        return str(constant.value)
    if isinstance(constant, ConstantFloat):
        return repr(constant.value)
    if isinstance(constant, ConstantNull):
        return "null"
    if isinstance(constant, UndefValue):
        return "undef"
    if isinstance(constant, ConstantZero):
        return "zeroinitializer"
    if isinstance(constant, ConstantArray):
        inner = ", ".join(
            f"{e.type} {print_constant(e)}" for e in constant.elements
        )
        return f"[{inner}]"
    if isinstance(constant, ConstantStruct):
        inner = ", ".join(
            f"{f.type} {print_constant(f)}" for f in constant.fields
        )
        return f"{{{inner}}}"
    raise TypeError(f"unknown constant kind: {constant!r}")


def print_declaration(fn: Function) -> str:
    params = ", ".join(str(p) for p in fn.ftype.params)
    if fn.ftype.vararg:
        params = f"{params}, ..." if params else "..."
    return f"declare {fn.ftype.ret} @{fn.name}({params})"


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    lines = [f"define {fn.ftype.ret} @{fn.name}({params}) {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {print_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def _ref(value: Value) -> str:
    return value.ref()


def print_instruction(inst: Instruction) -> str:
    if isinstance(inst, AllocaInst):
        count = inst.count
        return (
            f"%{inst.name} = alloca {inst.allocated_type}, "
            f"{count.type} {_ref(count)}"
        )
    if isinstance(inst, LoadInst):
        return f"%{inst.name} = load {inst.pointer.type} {_ref(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return (
            f"store {inst.value.type} {_ref(inst.value)}, "
            f"{inst.pointer.type} {_ref(inst.pointer)}"
        )
    if isinstance(inst, GEPInst):
        parts = [f"{inst.pointer.type} {_ref(inst.pointer)}"]
        for index in inst.indices:
            parts.append(f"{index.type} {_ref(index)}")
        return f"%{inst.name} = getelementptr {', '.join(parts)}"
    if isinstance(inst, ICmpInst):
        return (
            f"%{inst.name} = icmp {inst.predicate} {inst.lhs.type} "
            f"{_ref(inst.lhs)}, {_ref(inst.rhs)}"
        )
    if isinstance(inst, FCmpInst):
        return (
            f"%{inst.name} = fcmp {inst.predicate} {inst.lhs.type} "
            f"{_ref(inst.lhs)}, {_ref(inst.rhs)}"
        )
    if isinstance(inst, BinaryInst):
        return (
            f"%{inst.name} = {inst.opcode} {inst.lhs.type} "
            f"{_ref(inst.lhs)}, {_ref(inst.rhs)}"
        )
    if isinstance(inst, CastInst):
        return (
            f"%{inst.name} = {inst.opcode} {inst.value.type} "
            f"{_ref(inst.value)} to {inst.type}"
        )
    if isinstance(inst, CallInst):
        args = ", ".join(f"{a.type} {_ref(a)}" for a in inst.args)
        callee = _ref(inst.callee)
        if inst.type.is_void:
            return f"call void {callee}({args})"
        return f"%{inst.name} = call {inst.type} {callee}({args})"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            then_bb, else_bb = inst.targets
            return (
                f"br i1 {_ref(inst.condition)}, label %{then_bb.name}, "
                f"label %{else_bb.name}"
            )
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, ReturnInst):
        if inst.return_value is None:
            return "ret void"
        rv = inst.return_value
        return f"ret {rv.type} {_ref(rv)}"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(
            f"[ {_ref(v)}, %{b.name} ]" for v, b in inst.incoming
        )
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, SelectInst):
        return (
            f"%{inst.name} = select i1 {_ref(inst.condition)}, "
            f"{inst.true_value.type} {_ref(inst.true_value)}, "
            f"{inst.false_value.type} {_ref(inst.false_value)}"
        )
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    raise TypeError(f"unknown instruction kind: {inst!r}")
