"""IR structural verifier.

Checks the invariants that passes rely on:

* every reachable block ends in exactly one terminator, placed last;
* phis are grouped at the block start and have exactly one incoming value
  per predecessor (and none for non-predecessors);
* the entry block has no predecessors;
* every use of an instruction result is dominated by its definition
  (the classic SSA property);
* operand values belong to the same function (or are constants/globals);
* ``ret`` types match the enclosing function's return type.

Raises :class:`~repro.errors.VerificationError` with a message naming the
offending function, block, and instruction.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import VerificationError
from repro.ir.instructions import (
    BranchInst,
    Instruction,
    PhiInst,
    ReturnInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, Value


def verify_module(module: Module) -> None:
    for fn in module.defined_functions():
        verify_function(fn)


def verify_function(fn: Function) -> None:
    if not fn.blocks:
        return
    _check_blocks(fn)
    _check_phis(fn)
    _check_dominance(fn)
    _check_returns(fn)


def _fail(fn: Function, message: str) -> None:
    raise VerificationError(f"in function @{fn.name}: {message}")


def _check_blocks(fn: Function) -> None:
    seen_names: Set[str] = set()
    for block in fn.blocks:
        if block.name in seen_names:
            _fail(fn, f"duplicate block name %{block.name}")
        seen_names.add(block.name)
        if not block.instructions:
            _fail(fn, f"block %{block.name} is empty")
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                _fail(
                    fn,
                    f"instruction {inst.opcode} in %{block.name} has wrong parent",
                )
            is_last = i == len(block.instructions) - 1
            if inst.is_terminator != is_last:
                if inst.is_terminator:
                    _fail(fn, f"terminator mid-block in %{block.name}")
                _fail(fn, f"block %{block.name} does not end in a terminator")
        for succ in block.successors():
            if succ.parent is not fn:
                _fail(
                    fn,
                    f"%{block.name} branches to a block of another function",
                )
    entry = fn.entry
    if entry.predecessors():
        _fail(fn, f"entry block %{entry.name} has predecessors")
    if entry.phis():
        _fail(fn, f"entry block %{entry.name} contains phis")


def _check_phis(fn: Function) -> None:
    for block in fn.blocks:
        preds = block.predecessors()
        past_phis = False
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if past_phis:
                    _fail(fn, f"phi after non-phi in %{block.name}")
                incoming_blocks = [b for _, b in inst.incoming]
                if len(set(map(id, incoming_blocks))) != len(incoming_blocks):
                    _fail(
                        fn,
                        f"phi %{inst.name} has duplicate incoming blocks",
                    )
                if set(map(id, incoming_blocks)) != set(map(id, preds)):
                    pred_names = sorted(p.name for p in preds)
                    have = sorted(b.name for b in incoming_blocks)
                    _fail(
                        fn,
                        f"phi %{inst.name} in %{block.name} covers {have}, "
                        f"predecessors are {pred_names}",
                    )
            else:
                past_phis = True


def _check_returns(fn: Function) -> None:
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, ReturnInst):
            if term.return_value is None:
                if not fn.return_type.is_void:
                    _fail(
                        fn,
                        f"ret void in %{block.name} but function returns "
                        f"{fn.return_type}",
                    )
            elif term.return_value.type != fn.return_type:
                _fail(
                    fn,
                    f"ret type {term.return_value.type} in %{block.name} "
                    f"!= function return type {fn.return_type}",
                )


def _check_dominance(fn: Function) -> None:
    from repro.analysis.dominators import DominatorTree

    domtree = DominatorTree.compute(fn)
    positions: Dict[Instruction, int] = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = i

    def defined_before(definition: Instruction, use_site: Instruction) -> bool:
        def_block = definition.parent
        use_block = use_site.parent
        assert def_block is not None and use_block is not None
        if def_block is use_block:
            return positions[definition] < positions[use_site]
        return domtree.dominates(def_block, use_block)

    for block in fn.blocks:
        if not domtree.is_reachable(block):
            continue
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming:
                    if isinstance(value, Instruction):
                        if value.parent is None:
                            _fail(fn, f"phi %{inst.name} uses a detached value")
                        if not domtree.is_reachable(pred):
                            continue
                        term = pred.terminator
                        assert term is not None
                        if not defined_before(value, term) and value is not inst:
                            # The def must dominate the end of the incoming edge.
                            if not domtree.dominates(value.parent, pred):
                                _fail(
                                    fn,
                                    f"phi %{inst.name}: %{value.name} does not "
                                    f"dominate edge from %{pred.name}",
                                )
                continue
            for operand in inst.operands:
                _check_operand(fn, domtree, defined_before, inst, operand)


def _check_operand(fn, domtree, defined_before, inst: Instruction, operand: Value) -> None:
    if isinstance(operand, (Constant, GlobalVariable, Function, BasicBlock)):
        if isinstance(operand, BasicBlock) and operand.parent is not fn:
            _fail(fn, f"{inst.opcode} references a foreign block")
        return
    if isinstance(operand, Argument):
        if operand.parent is not fn:
            _fail(fn, f"{inst.opcode} uses an argument of another function")
        return
    if isinstance(operand, Instruction):
        if operand.parent is None:
            _fail(fn, f"{inst.opcode} uses detached instruction %{operand.name}")
        if operand.function is not fn:
            _fail(fn, f"{inst.opcode} uses a value from another function")
        if not defined_before(operand, inst):
            _fail(
                fn,
                f"use of %{operand.name} in {inst.opcode} "
                f"(block %{inst.parent.name}) is not dominated by its definition",
            )
        return
    _fail(fn, f"{inst.opcode} has an operand of unknown kind: {operand!r}")
