"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

Supports forward references to blocks (always) and to values (as produced
by phis and loop-carried uses) via typed placeholders that are patched once
the real definition is parsed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError, ParseError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    CAST_OPS,
    FCMP_PREDICATES,
    FLOAT_BINARY_OPS,
    ICMP_PREDICATES,
    INT_BINARY_OPS,
    AllocaInst,
    BranchInst,
    CallInst,
    GEPInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from repro.ir.values import (
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<local>%[A-Za-z0-9_.$-]+)
  | (?P<global>@[A-Za-z0-9_.$-]+)
  | (?P<number>[-+]?(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d+))
  | (?P<ellipsis>\.\.\.)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[=,(){}\[\]*:])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.col}>"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, col = 1, 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        text = match.group(0)
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = match.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Placeholder(Value):
    """A typed stand-in for a value referenced before its definition."""

    __slots__ = ()


class IRParser:
    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0
        name_match = re.search(r"^;\s*module:\s*(\S+)", source, re.MULTILINE)
        self.module = Module(name_match.group(1) if name_match else "module")

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r}, found {tok.text!r}", tok.line, tok.col
            )
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    # -- types ------------------------------------------------------------------

    def _parse_type(self) -> Type:
        tok = self._peek()
        base: Type
        if tok.kind == "word":
            if tok.text == "void":
                self._next()
                base = VOID
            elif tok.text == "label":
                self._next()
                raise ParseError("label type not allowed here", tok.line, tok.col)
            elif re.fullmatch(r"i\d+", tok.text):
                self._next()
                base = IntType(int(tok.text[1:]))
            elif tok.text in ("f32", "f64"):
                self._next()
                base = FloatType(int(tok.text[1:]))
            else:
                raise ParseError(f"unknown type {tok.text!r}", tok.line, tok.col)
        elif tok.kind == "local" and tok.text.startswith("%struct."):
            self._next()
            name = tok.text[len("%struct.") :]
            st = self.module.struct_types.get(name)
            if st is None:
                # Forward-declared named struct; fields filled later.
                st = StructType([], name=name)
                self.module.struct_types[name] = st
            base = st
        elif tok.kind == "punct" and tok.text == "[":
            self._next()
            count_tok = self._expect("number")
            self._expect("word", "x")
            element = self._parse_type()
            self._expect("punct", "]")
            base = ArrayType(element, int(count_tok.text))
        elif tok.kind == "punct" and tok.text == "{":
            self._next()
            fields = []
            if not self._accept("punct", "}"):
                while True:
                    fields.append(self._parse_type())
                    if self._accept("punct", "}"):
                        break
                    self._expect("punct", ",")
            base = StructType(fields)
        else:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.line, tok.col)
        while self._accept("punct", "*"):
            base = PointerType(base)
        return base

    # -- constants -----------------------------------------------------------------

    def _parse_constant(self, ty: Type) -> Constant:
        tok = self._peek()
        if tok.kind == "number":
            self._next()
            if isinstance(ty, IntType):
                return ConstantInt(ty, int(float(tok.text)) if ("." in tok.text or "e" in tok.text or "E" in tok.text) else int(tok.text))
            if isinstance(ty, FloatType):
                return ConstantFloat(ty, float(tok.text))
            raise ParseError(f"numeric constant for non-numeric type {ty}", tok.line, tok.col)
        if tok.kind == "word":
            if tok.text == "null":
                self._next()
                if not isinstance(ty, PointerType):
                    raise ParseError("null requires a pointer type", tok.line, tok.col)
                return ConstantNull(ty)
            if tok.text == "undef":
                self._next()
                return UndefValue(ty)
            if tok.text == "zeroinitializer":
                self._next()
                return ConstantZero(ty)
            if tok.text in ("inf", "nan"):
                self._next()
                return ConstantFloat(ty, float(tok.text))  # type: ignore[arg-type]
        if tok.kind == "punct" and tok.text == "[":
            self._next()
            elements: List[Constant] = []
            if not self._accept("punct", "]"):
                while True:
                    ety = self._parse_type()
                    elements.append(self._parse_constant(ety))
                    if self._accept("punct", "]"):
                        break
                    self._expect("punct", ",")
            if not isinstance(ty, ArrayType):
                raise ParseError("array constant for non-array type", tok.line, tok.col)
            return ConstantArray(ty, elements)
        if tok.kind == "punct" and tok.text == "{":
            self._next()
            fields: List[Constant] = []
            if not self._accept("punct", "}"):
                while True:
                    fty = self._parse_type()
                    fields.append(self._parse_constant(fty))
                    if self._accept("punct", "}"):
                        break
                    self._expect("punct", ",")
            if not isinstance(ty, StructType):
                raise ParseError("struct constant for non-struct type", tok.line, tok.col)
            return ConstantStruct(ty, fields)
        raise ParseError(f"expected a constant, found {tok.text!r}", tok.line, tok.col)

    # -- module level -------------------------------------------------------------------

    def parse_module(self) -> Module:
        while self._peek().kind != "eof":
            tok = self._peek()
            if tok.kind == "local" and tok.text.startswith("%struct."):
                self._parse_struct_def()
            elif tok.kind == "global":
                self._parse_global()
            elif tok.kind == "word" and tok.text == "declare":
                self._parse_declare()
            elif tok.kind == "word" and tok.text == "define":
                self._parse_define()
            else:
                raise ParseError(
                    f"unexpected token at module level: {tok.text!r}",
                    tok.line,
                    tok.col,
                )
        return self.module

    def _parse_struct_def(self) -> None:
        tok = self._next()
        name = tok.text[len("%struct.") :]
        self._expect("punct", "=")
        self._expect("word", "type")
        self._expect("punct", "{")
        fields: List[Type] = []
        if not self._accept("punct", "}"):
            while True:
                fields.append(self._parse_type())
                if self._accept("punct", "}"):
                    break
                self._expect("punct", ",")
        existing = self.module.struct_types.get(name)
        if existing is not None:
            existing.fields = tuple(fields)
            existing.field_names = tuple(f"f{i}" for i in range(len(fields)))
        else:
            self.module.struct_types[name] = StructType(fields, name=name)

    def _parse_global(self) -> None:
        tok = self._next()
        name = tok.text[1:]
        self._expect("punct", "=")
        kind_tok = self._next()
        if kind_tok.text not in ("global", "constant"):
            raise ParseError(
                f"expected 'global' or 'constant', found {kind_tok.text!r}",
                kind_tok.line,
                kind_tok.col,
            )
        ty = self._parse_type()
        init_tok = self._peek()
        if init_tok.kind == "word" and init_tok.text == "undef":
            self._next()
            initializer: Optional[Constant] = None
        else:
            initializer = self._parse_constant(ty)
        gv = GlobalVariable(name, ty, initializer, kind_tok.text == "constant")
        self.module.add_global(gv)

    def _parse_declare(self) -> None:
        self._expect("word", "declare")
        ret = self._parse_type()
        name_tok = self._expect("global")
        self._expect("punct", "(")
        params: List[Type] = []
        vararg = False
        if not self._accept("punct", ")"):
            while True:
                if self._accept("ellipsis"):
                    vararg = True
                    self._expect("punct", ")")
                    break
                params.append(self._parse_type())
                if self._accept("punct", ")"):
                    break
                self._expect("punct", ",")
        Function(name_tok.text[1:], FunctionType(ret, params, vararg), self.module)

    def _parse_define(self) -> None:
        self._expect("word", "define")
        ret = self._parse_type()
        name_tok = self._expect("global")
        self._expect("punct", "(")
        params: List[Tuple[Type, str]] = []
        if not self._accept("punct", ")"):
            while True:
                pty = self._parse_type()
                pname = self._expect("local").text[1:]
                params.append((pty, pname))
                if self._accept("punct", ")"):
                    break
                self._expect("punct", ",")
        self._expect("punct", "{")
        fn = Function(
            name_tok.text[1:],
            FunctionType(ret, [p for p, _ in params]),
            self.module,
            arg_names=[n for _, n in params],
        )
        _FunctionBodyParser(self, fn).parse()


class _FunctionBodyParser:
    def __init__(self, parent: IRParser, fn: Function) -> None:
        self.p = parent
        self.fn = fn
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.placeholders: Dict[str, _Placeholder] = {}
        self.builder = IRBuilder()

    def parse(self) -> None:
        p = self.p
        while not p._accept("punct", "}"):
            label_tok = p._expect("word")
            p._expect("punct", ":")
            block = self._get_block(label_tok.text)
            self.fn.blocks.remove(block)
            self.fn.blocks.append(block)  # keep textual order
            self.builder.position_at_end(block)
            while True:
                tok = p._peek()
                if tok.kind == "punct" and tok.text == "}":
                    break
                if tok.kind == "word" and p._tokens[p._pos + 1].text == ":":
                    break  # next label
                self._parse_instruction()
                if block.is_terminated:
                    break
        if self.placeholders:
            missing = ", ".join(sorted(self.placeholders))
            raise IRError(
                f"function @{self.fn.name}: undefined value(s): {missing}"
            )

    # -- helpers ------------------------------------------------------------------

    def _get_block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name, self.fn)
            self.fn.blocks.append(block)
            self.blocks[name] = block
        return block

    def _define(self, name: str, value: Value) -> None:
        value.name = name
        placeholder = self.placeholders.pop(name, None)
        if placeholder is not None:
            placeholder.replace_all_uses_with(value)
        self.values[name] = value

    def _get_value(self, name: str, ty: Type) -> Value:
        existing = self.values.get(name)
        if existing is not None:
            return existing
        placeholder = self.placeholders.get(name)
        if placeholder is None:
            placeholder = _Placeholder(ty, name)
            self.placeholders[name] = placeholder
        return placeholder

    def _parse_operand(self, ty: Type) -> Value:
        p = self.p
        tok = p._peek()
        if tok.kind == "local":
            p._next()
            return self._get_value(tok.text[1:], ty)
        if tok.kind == "global":
            p._next()
            name = tok.text[1:]
            gv = self.p.module.globals.get(name)
            if gv is not None:
                return gv
            fn = self.p.module.functions.get(name)
            if fn is not None:
                return fn
            raise ParseError(f"unknown global {tok.text!r}", tok.line, tok.col)
        return p._parse_constant(ty)

    def _parse_typed_operand(self) -> Value:
        ty = self.p._parse_type()
        return self._parse_operand(ty)

    # -- instruction dispatch ---------------------------------------------------------

    def _parse_instruction(self) -> None:
        p = self.p
        tok = p._peek()
        if tok.kind == "local":
            p._next()
            name = tok.text[1:]
            p._expect("punct", "=")
            inst = self._parse_rhs()
            self._define(name, inst)
            return
        # Void instructions.
        word = p._expect("word").text
        if word == "store":
            value = self._parse_typed_operand()
            p._expect("punct", ",")
            pointer = self._parse_typed_operand()
            self.builder._insert(StoreInst(value, pointer))
        elif word == "br":
            self._parse_branch()
        elif word == "ret":
            if p._accept("word", "void"):
                self.builder._insert(ReturnInst())
            else:
                self.builder._insert(ReturnInst(self._parse_typed_operand()))
        elif word == "call":
            self._parse_call(void=True)
        elif word == "unreachable":
            self.builder._insert(UnreachableInst())
        else:
            raise ParseError(f"unknown instruction {word!r}", tok.line, tok.col)

    def _parse_branch(self) -> None:
        p = self.p
        if p._accept("word", "label"):
            target = self._get_block(p._expect("local").text[1:])
            self.builder._insert(BranchInst(target))
            return
        cond_ty = p._parse_type()
        cond = self._parse_operand(cond_ty)
        p._expect("punct", ",")
        p._expect("word", "label")
        if_true = self._get_block(p._expect("local").text[1:])
        p._expect("punct", ",")
        p._expect("word", "label")
        if_false = self._get_block(p._expect("local").text[1:])
        self.builder._insert(BranchInst(if_true, cond, if_false))

    def _parse_call(self, void: bool) -> Value:
        p = self.p
        p._parse_type()  # return type (redundant; checked by CallInst)
        callee_tok = p._peek()
        if callee_tok.kind == "global":
            p._next()
            callee: Value = self.p.module.get_function(callee_tok.text[1:])
        elif callee_tok.kind == "local":
            p._next()
            name = callee_tok.text[1:]
            existing = self.values.get(name)
            if existing is None:
                raise ParseError(
                    f"indirect call through undefined value %{name}",
                    callee_tok.line,
                    callee_tok.col,
                )
            callee = existing
        else:
            raise ParseError("expected call target", callee_tok.line, callee_tok.col)
        p._expect("punct", "(")
        args: List[Value] = []
        if not p._accept("punct", ")"):
            while True:
                args.append(self._parse_typed_operand())
                if p._accept("punct", ")"):
                    break
                p._expect("punct", ",")
        inst = CallInst(callee, args)
        self.builder._insert(inst)
        return inst

    def _parse_rhs(self) -> Value:
        p = self.p
        op_tok = p._expect("word")
        op = op_tok.text
        if op == "alloca":
            ty = p._parse_type()
            p._expect("punct", ",")
            count = self._parse_typed_operand()
            return self.builder._insert(AllocaInst(ty, count))
        if op == "load":
            pointer = self._parse_typed_operand()
            return self.builder._insert(LoadInst(pointer))
        if op == "getelementptr":
            pointer = self._parse_typed_operand()
            indices: List[Value] = []
            while p._accept("punct", ","):
                indices.append(self._parse_typed_operand())
            return self.builder._insert(GEPInst(pointer, indices))
        if op == "icmp":
            pred = p._expect("word").text
            lhs_ty = p._parse_type()
            lhs = self._parse_operand(lhs_ty)
            p._expect("punct", ",")
            rhs = self._parse_operand(lhs_ty)
            return self.builder.icmp(pred, lhs, rhs)
        if op == "fcmp":
            pred = p._expect("word").text
            lhs_ty = p._parse_type()
            lhs = self._parse_operand(lhs_ty)
            p._expect("punct", ",")
            rhs = self._parse_operand(lhs_ty)
            return self.builder.fcmp(pred, lhs, rhs)
        if op in INT_BINARY_OPS or op in FLOAT_BINARY_OPS:
            lhs_ty = p._parse_type()
            lhs = self._parse_operand(lhs_ty)
            p._expect("punct", ",")
            rhs = self._parse_operand(lhs_ty)
            return self.builder.binop(op, lhs, rhs)
        if op in CAST_OPS:
            value = self._parse_typed_operand()
            p._expect("word", "to")
            dest = p._parse_type()
            return self.builder.cast(op, value, dest)
        if op == "call":
            return self._parse_call(void=False)
        if op == "phi":
            ty = p._parse_type()
            phi = PhiInst(ty)
            index = self.builder.block.first_non_phi_index()
            self.builder.block.insert(index, phi)
            while True:
                p._expect("punct", "[")
                value = self._parse_operand(ty)
                p._expect("punct", ",")
                block = self._get_block(p._expect("local").text[1:])
                p._expect("punct", "]")
                phi.add_incoming(value, block)
                if not p._accept("punct", ","):
                    break
            return phi
        if op == "select":
            cond_ty = p._parse_type()
            cond = self._parse_operand(cond_ty)
            p._expect("punct", ",")
            a = self._parse_typed_operand()
            p._expect("punct", ",")
            b = self._parse_typed_operand()
            return self.builder._insert(SelectInst(cond, a, b))
        raise ParseError(f"unknown instruction {op!r}", op_tok.line, op_tok.col)


def parse_module(source: str) -> Module:
    """Parse textual IR into a :class:`Module`."""
    return IRParser(source).parse_module()
