"""IR value hierarchy: the base :class:`Value`, constants, and arguments.

Use-def chains are maintained eagerly: every value records the set of
instructions that use it, and instructions update those sets whenever an
operand is set or replaced.  ``replace_all_uses_with`` is the workhorse of
every transformation pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.errors import IRError, IRTypeError
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction
    from repro.ir.module import Function


class Use:
    """One operand slot of one instruction referencing a value."""

    __slots__ = ("user", "index")

    def __init__(self, user: "Instruction", index: int) -> None:
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return f"<Use {self.user.name}[{self.index}]>"


class Value:
    """Anything that can appear as an operand: instructions, constants,
    arguments, globals, and basic blocks (as branch targets)."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, ty: Type, name: str = "") -> None:
        self.type = ty
        self.name = name
        self._uses: List[Use] = []

    # -- use-def maintenance (called by Instruction) ------------------------

    def _add_use(self, use: Use) -> None:
        self._uses.append(use)

    def _remove_use(self, user: "Instruction", index: int) -> None:
        for i, use in enumerate(self._uses):
            if use.user is user and use.index == index:
                del self._uses[i]
                return
        raise IRError(f"use not found: {user!r}[{index}] of {self!r}")

    @property
    def uses(self) -> List[Use]:
        return list(self._uses)

    @property
    def users(self) -> List["Instruction"]:
        """Instructions using this value (with duplicates collapsed)."""
        seen = []
        for use in self._uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def replace_all_uses_with(self, replacement: "Value") -> None:
        if replacement is self:
            return
        if replacement.type != self.type:
            raise IRTypeError(
                f"RAUW type mismatch: {self.type} vs {replacement.type}"
            )
        for use in list(self._uses):
            use.user.set_operand(use.index, replacement)

    # -- display -------------------------------------------------------------

    def ref(self) -> str:
        """How this value is written when used as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """Base class for immediate values.  Constants are not uniqued, but they
    compare structurally equal."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - overridden
        return id(self)


class ConstantInt(Constant):
    __slots__ = ("value",)

    def __init__(self, ty: IntType, value: int) -> None:
        if not isinstance(ty, IntType):
            raise IRTypeError(f"ConstantInt requires an integer type, got {ty}")
        super().__init__(ty)
        self.value = ty.wrap(int(value))

    def ref(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, ty: FloatType, value: float) -> None:
        if not isinstance(ty, FloatType):
            raise IRTypeError(f"ConstantFloat requires a float type, got {ty}")
        super().__init__(ty)
        self.value = float(value)

    def ref(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.type, self.value))


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    __slots__ = ()

    def __init__(self, ty: PointerType) -> None:
        if not isinstance(ty, PointerType):
            raise IRTypeError(f"ConstantNull requires a pointer type, got {ty}")
        super().__init__(ty)

    def ref(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantNull) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("cnull", self.type))


class UndefValue(Constant):
    """An unspecified value of any first-class type."""

    __slots__ = ()

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UndefValue) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("undef", self.type))


class ConstantArray(Constant):
    """A constant array; used for global initializers (e.g. string data)."""

    __slots__ = ("elements",)

    def __init__(self, ty: ArrayType, elements: List[Constant]) -> None:
        if len(elements) != ty.count:
            raise IRTypeError(
                f"array initializer has {len(elements)} elements, "
                f"type expects {ty.count}"
            )
        for elem in elements:
            if elem.type != ty.element:
                raise IRTypeError(
                    f"array element type {elem.type} != {ty.element}"
                )
        super().__init__(ty)
        self.elements = list(elements)

    def ref(self) -> str:
        inner = ", ".join(e.ref() for e in self.elements)
        return f"[{inner}]"


class ConstantStruct(Constant):
    __slots__ = ("fields",)

    def __init__(self, ty: StructType, fields: List[Constant]) -> None:
        if len(fields) != len(ty.fields):
            raise IRTypeError("struct initializer arity mismatch")
        for value, fty in zip(fields, ty.fields):
            if value.type != fty:
                raise IRTypeError(
                    f"struct field type {value.type} != {fty}"
                )
        super().__init__(ty)
        self.fields = list(fields)

    def ref(self) -> str:
        inner = ", ".join(f.ref() for f in self.fields)
        return f"{{{inner}}}"


class ConstantZero(Constant):
    """Zero-initializer for any sized type (like LLVM's zeroinitializer)."""

    __slots__ = ()

    def ref(self) -> str:
        return "zeroinitializer"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantZero) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("czero", self.type))


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, ty: Type, name: str, parent: "Function", index: int) -> None:
        super().__init__(ty, name)
        self.parent = parent
        self.index = index


def const_int(ty: IntType, value: int) -> ConstantInt:
    return ConstantInt(ty, value)


def const_bool(value: bool) -> ConstantInt:
    from repro.ir.types import I1

    return ConstantInt(I1, 1 if value else 0)


def is_constant(value: Value) -> bool:
    return isinstance(value, Constant)


def walk_constants(value: Constant) -> Iterator[Constant]:
    """Yield ``value`` and every nested constant inside aggregates."""
    yield value
    if isinstance(value, ConstantArray):
        for elem in value.elements:
            yield from walk_constants(elem)
    elif isinstance(value, ConstantStruct):
        for field in value.fields:
            yield from walk_constants(field)
