"""Module, function, basic block, and global variable containers.

A :class:`Module` owns globals and functions.  A :class:`Function` owns an
ordered list of :class:`BasicBlock`; the first block is the entry.  Basic
blocks are themselves values (of label type) so branch instructions can use
them as operands with full use-def bookkeeping — finding a block's
predecessors is then just a use-list walk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import IRError, IRTypeError
from repro.ir.instructions import BranchInst, Instruction, PhiInst
from repro.ir.types import FunctionType, PointerType, StructType, Type, ptr
from repro.ir.values import Argument, Constant, Value


class LabelType(Type):
    """The type of basic blocks when used as branch operands."""

    def __str__(self) -> str:
        return "label"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")


LABEL = LabelType()


class GlobalVariable(Value):
    """A module-level variable.  Its value is the *address* of the storage,
    so the type is a pointer to the contents, as in LLVM."""

    __slots__ = ("value_type", "initializer", "is_constant", "parent")

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
    ) -> None:
        super().__init__(ptr(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant
        self.parent: Optional["Module"] = None
        if initializer is not None and initializer.type != value_type:
            raise IRTypeError(
                f"global {name!r}: initializer type {initializer.type} "
                f"!= declared type {value_type}"
            )

    def ref(self) -> str:
        return f"@{self.name}"


class BasicBlock(Value):
    __slots__ = ("parent", "instructions")

    def __init__(self, name: str, parent: "Function") -> None:
        super().__init__(LABEL, name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    def ref(self) -> str:
        return f"%{self.name}"

    # -- instruction list management ------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise IRError(f"instruction {inst.name!r} already has a parent")
        if self.instructions and self.instructions[-1].is_terminator:
            raise IRError(f"block {self.name!r} is already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise IRError(f"instruction {inst.name!r} already has a parent")
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.index_of(anchor) + 1, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def index_of(self, inst: Instruction) -> int:
        for i, candidate in enumerate(self.instructions):
            if candidate is inst:
                return i
        raise IRError(f"instruction {inst.name!r} not in block {self.name!r}")

    # -- structure queries --------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, BranchInst):
            return list(term.targets)
        return []

    def predecessors(self) -> List["BasicBlock"]:
        preds: List[BasicBlock] = []
        for use in self._uses:
            user = use.user
            if isinstance(user, BranchInst) and user.parent is not None:
                if user.parent not in preds:
                    preds.append(user.parent)
        return preds

    def phis(self) -> List[PhiInst]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition (with blocks) or declaration (without)."""

    __slots__ = ("ftype", "args", "blocks", "parent", "attributes", "_name_counter")

    def __init__(
        self,
        name: str,
        ftype: FunctionType,
        module: Optional["Module"] = None,
        arg_names: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(ptr(ftype), name)
        self.ftype = ftype
        self.parent = module
        self.blocks: List[BasicBlock] = []
        self.attributes: set = set()
        self._name_counter = 0
        if arg_names is None:
            arg_names = [f"arg{i}" for i in range(len(ftype.params))]
        if len(arg_names) != len(ftype.params):
            raise IRError("arg_names length must match parameter count")
        self.args: List[Argument] = [
            Argument(pty, arg_names[i], self, i)
            for i, pty in enumerate(ftype.params)
        ]
        if module is not None:
            module.add_function(self)

    def ref(self) -> str:
        return f"@{self.name}"

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "", before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"), self)
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        if block.num_uses:
            raise IRError(
                f"cannot remove block {block.name!r}: it still has predecessors"
            )
        self.blocks.remove(block)

    def unique_name(self, hint: str) -> str:
        self._name_counter += 1
        return f"{hint}.{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        """All instructions, in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} {self.ftype.ret} @{self.name}>"


class Module:
    """Top-level container: named structs, globals, and functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        self.struct_types: Dict[str, StructType] = {}
        self.metadata: Dict[str, object] = {}

    # -- globals --------------------------------------------------------------------

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals or gv.name in self.functions:
            raise IRError(f"duplicate global name: {gv.name!r}")
        gv.parent = self
        self.globals[gv.name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"no global named {name!r}")

    # -- functions -------------------------------------------------------------------

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions or fn.name in self.globals:
            raise IRError(f"duplicate function name: {fn.name!r}")
        fn.parent = self
        self.functions[fn.name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name!r}")

    def get_or_declare(
        self, name: str, ftype: FunctionType, arg_names: Optional[Sequence[str]] = None
    ) -> Function:
        existing = self.functions.get(name)
        if existing is not None:
            if existing.ftype != ftype:
                raise IRTypeError(
                    f"function {name!r} redeclared with type {ftype}, "
                    f"was {existing.ftype}"
                )
            return existing
        return Function(name, ftype, self, arg_names)

    # -- structs --------------------------------------------------------------------

    def add_struct_type(self, st: StructType) -> StructType:
        if not st.name:
            raise IRError("only named structs can be registered on a module")
        existing = self.struct_types.get(st.name)
        if existing is not None:
            return existing
        self.struct_types[st.name] = st
        return st

    # -- traversal --------------------------------------------------------------------

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.defined_functions():
            yield from fn.instructions()

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} function(s), "
            f"{len(self.globals)} global(s)>"
        )
