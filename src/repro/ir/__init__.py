"""A small SSA intermediate representation, modelled on LLVM.

This package is the substrate the CARAT compiler passes operate on.  It
provides:

* a type system (:mod:`repro.ir.types`) with a 64-bit data layout;
* values, constants, and use-def chains (:mod:`repro.ir.values`);
* the instruction set (:mod:`repro.ir.instructions`);
* module / function / basic-block containers (:mod:`repro.ir.module`);
* an :class:`IRBuilder` (:mod:`repro.ir.builder`);
* a textual printer and parser (round-trippable);
* a structural verifier.
"""

from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.types import (
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    align_of,
    ptr,
    size_of,
    stride_of,
    struct_field_offset,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "IRBuilder",
    "AllocaInst",
    "BinaryInst",
    "BranchInst",
    "CallInst",
    "CastInst",
    "FCmpInst",
    "GEPInst",
    "ICmpInst",
    "Instruction",
    "LoadInst",
    "PhiInst",
    "ReturnInst",
    "SelectInst",
    "StoreInst",
    "UnreachableInst",
    "BasicBlock",
    "Function",
    "GlobalVariable",
    "Module",
    "parse_module",
    "print_function",
    "print_instruction",
    "print_module",
    "F64",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "VOID",
    "ArrayType",
    "FloatType",
    "FunctionType",
    "IntType",
    "PointerType",
    "StructType",
    "Type",
    "align_of",
    "ptr",
    "size_of",
    "stride_of",
    "struct_field_offset",
    "Argument",
    "Constant",
    "ConstantArray",
    "ConstantFloat",
    "ConstantInt",
    "ConstantNull",
    "ConstantStruct",
    "ConstantZero",
    "UndefValue",
    "Value",
    "verify_function",
    "verify_module",
]
