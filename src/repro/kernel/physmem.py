"""Physical memory and the page frame allocator.

A flat byte-addressable physical memory (an anonymous ``mmap``) with
typed accessors, plus a bitmap frame allocator handing out 4 KB frames —
the kernel substrate both execution models sit on.  In the CARAT model
the program addresses this memory directly; in the traditional model the
MMU translates first.
"""

from __future__ import annotations

import mmap
import struct
from typing import List, Optional, Tuple

from repro.errors import OutOfMemoryError, ReproError

PAGE_SIZE = 4096

#: Tier names for a fast/slow split of physical memory (the policy
#: engine's tiered-placement substrate).  ``None`` means "untiered".
TIER_FAST = "fast"
TIER_SLOW = "slow"


class PhysicalMemoryError(ReproError):
    pass


class PhysicalMemory:
    """Byte-addressable physical memory with little-endian typed access.

    ``fast_size`` optionally splits the memory into two tiers: addresses
    below the boundary are the *fast* (near/DRAM) tier, addresses at or
    above it are the *slow* (far/capacity) tier.  The split is purely an
    accounting boundary — one flat bytearray backs both tiers — but the
    interpreter charges tier-dependent access cycles and the policy
    engine's tiering balancer migrates pages across the boundary.
    """

    def __init__(self, size: int, fast_size: Optional[int] = None) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise PhysicalMemoryError(
                f"physical memory size must be a positive multiple of "
                f"{PAGE_SIZE}, got {size}"
            )
        if fast_size is not None and (
            fast_size <= 0 or fast_size % PAGE_SIZE or fast_size >= size
        ):
            raise PhysicalMemoryError(
                f"fast tier size must be a page-aligned positive size "
                f"smaller than memory ({size}), got {fast_size}"
            )
        self.size = size
        #: Byte address where the slow tier starts; ``None`` = untiered.
        self.fast_size = fast_size
        # Anonymous mmap instead of ``bytearray(size)``: the OS hands out
        # demand-zeroed pages lazily, so booting a kernel costs microseconds
        # instead of a full memset of the whole physical address space —
        # which dominated short runs and multi-tenant boot (one memory per
        # kernel).  Slicing semantics are identical for every consumer
        # (slice reads decode the same, exact-length slice writes, whole-
        # buffer ``bytes()`` snapshots).
        self._data = mmap.mmap(-1, size)
        #: Counters for bandwidth-style accounting.
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def tiered(self) -> bool:
        return self.fast_size is not None

    def tier_of(self, address: int) -> Optional[str]:
        """Which tier serves ``address``; ``None`` when untiered."""
        if self.fast_size is None:
            return None
        return TIER_FAST if address < self.fast_size else TIER_SLOW

    # -- bounds -----------------------------------------------------------------

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size:
            raise PhysicalMemoryError(
                f"physical access [{address:#x}, {address + length:#x}) out "
                f"of range (memory is {self.size:#x} bytes)"
            )

    # -- raw bytes ---------------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, length)
        self.bytes_read += length
        return bytes(self._data[address : address + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        self.bytes_written += len(data)
        self._data[address : address + len(data)] = data

    def fill(self, address: int, length: int, value: int = 0) -> None:
        self._check(address, length)
        self._data[address : address + length] = bytes([value]) * length
        self.bytes_written += length

    def copy(self, src: int, dst: int, length: int) -> None:
        self._check(src, length)
        self._check(dst, length)
        self._data[dst : dst + length] = self._data[src : src + length]
        self.bytes_read += length
        self.bytes_written += length

    # -- typed accessors ------------------------------------------------------------

    def read_uint(self, address: int, size: int) -> int:
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=False)

    def write_uint(self, address: int, value: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        self.write_bytes(address, (value & mask).to_bytes(size, "little"))

    def read_int(self, address: int, size: int) -> int:
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=True)

    def write_int(self, address: int, value: int, size: int) -> None:
        self.write_uint(address, value, size)

    def read_u64(self, address: int) -> int:
        return self.read_uint(address, 8)

    def write_u64(self, address: int, value: int) -> None:
        self.write_uint(address, value, 8)

    def read_f64(self, address: int) -> float:
        return struct.unpack("<d", self.read_bytes(address, 8))[0]

    def write_f64(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<d", value))

    def read_f32(self, address: int) -> float:
        return struct.unpack("<f", self.read_bytes(address, 4))[0]

    def write_f32(self, address: int, value: float) -> None:
        self.write_bytes(address, struct.pack("<f", value))

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        out = bytearray()
        for offset in range(limit):
            byte = self.read_uint(address + offset, 1)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)


class FrameAllocator:
    """Bitmap allocator over the physical frames.

    ``reserve_low`` frames at the bottom are never handed out (the kernel
    image / firmware hole, and it keeps address 0 unmapped so null pointer
    dereferences fault in both models).

    ``fast_frames`` optionally splits the frame space into a fast tier
    (frames below the boundary) and a slow tier (the rest), mirroring
    :class:`PhysicalMemory`'s ``fast_size``.  ``alloc(..., tier=...)``
    then constrains the search to one pool; tier-less allocations keep
    the historical next-fit behaviour over the whole space.
    """

    def __init__(
        self,
        memory_size: int,
        reserve_low: int = 16,
        fast_frames: Optional[int] = None,
    ) -> None:
        if memory_size % PAGE_SIZE:
            raise PhysicalMemoryError("memory size must be page aligned")
        self.total_frames = memory_size // PAGE_SIZE
        if fast_frames is not None and not (
            reserve_low < fast_frames < self.total_frames
        ):
            raise PhysicalMemoryError(
                f"fast tier must span (reserve_low, total_frames), got "
                f"{fast_frames} of {self.total_frames}"
            )
        self._free: List[bool] = [True] * self.total_frames
        for frame in range(min(reserve_low, self.total_frames)):
            self._free[frame] = False
        self.reserved_low = reserve_low
        self.fast_frames = fast_frames
        self.allocated_frames = 0
        self._cursor = reserve_low  # next-fit search position

    @property
    def free_frames(self) -> int:
        return sum(self._free)

    @property
    def usable_frames(self) -> int:
        """Frames the allocator can ever hand out."""
        return self.total_frames - min(self.reserved_low, self.total_frames)

    def occupancy(self) -> float:
        """Fraction of usable frames currently allocated."""
        usable = self.usable_frames
        return self.allocated_frames / usable if usable else 0.0

    def frame_is_free(self, frame: int) -> bool:
        return self._free[frame]

    # -- tiers ------------------------------------------------------------------

    @property
    def tiered(self) -> bool:
        return self.fast_frames is not None

    def tier_of_frame(self, frame: int) -> Optional[str]:
        if self.fast_frames is None:
            return None
        return TIER_FAST if frame < self.fast_frames else TIER_SLOW

    def tier_bounds(self, tier: Optional[str]) -> Tuple[int, int]:
        """Frame range [lo, hi) the allocator searches for ``tier``."""
        if tier is None:
            return self.reserved_low, self.total_frames
        if self.fast_frames is None:
            raise PhysicalMemoryError("allocator is not tiered")
        if tier == TIER_FAST:
            return self.reserved_low, self.fast_frames
        if tier == TIER_SLOW:
            return self.fast_frames, self.total_frames
        raise PhysicalMemoryError(f"unknown tier {tier!r}")

    def free_frames_in(self, tier: Optional[str]) -> int:
        lo, hi = self.tier_bounds(tier)
        return sum(self._free[lo:hi])

    # -- allocation -------------------------------------------------------------

    def alloc(self, count: int = 1, tier: Optional[str] = None) -> int:
        """Allocate ``count`` physically contiguous frames; returns the
        first frame number.  ``tier`` constrains the search to one pool
        of a tiered allocator (first fit within the pool)."""
        if count <= 0:
            raise PhysicalMemoryError("frame count must be positive")
        if tier is not None:
            lo, hi = self.tier_bounds(tier)
            start = self._find_run(lo, count, limit=hi)
        else:
            start = self._find_run(self._cursor, count)
            if start is None:
                start = self._find_run(self.reserved_low, count)
        if start is None:
            raise OutOfMemoryError(
                f"cannot allocate {count} contiguous frame(s)"
                + (f" in the {tier} tier" if tier else "")
                + f"; {self.free_frames_in(tier)} free"
            )
        for frame in range(start, start + count):
            self._free[frame] = False
        self.allocated_frames += count
        if tier is None:
            self._cursor = start + count
        return start

    def alloc_address(self, count: int = 1, tier: Optional[str] = None) -> int:
        """Allocate frames and return the base *byte* address."""
        return self.alloc(count, tier=tier) * PAGE_SIZE

    def alloc_at(self, frame: int, count: int = 1) -> bool:
        """Claim a specific frame run if (and only if) it is entirely free.

        Used by stack expansion, which strongly prefers frames physically
        adjacent below the existing stack.
        """
        if frame < self.reserved_low or frame + count > self.total_frames:
            return False
        if not all(self._free[f] for f in range(frame, frame + count)):
            return False
        for f in range(frame, frame + count):
            self._free[f] = False
        self.allocated_frames += count
        return True

    def _find_run(
        self, begin: int, count: int, limit: Optional[int] = None
    ) -> Optional[int]:
        run = 0
        end = self.total_frames if limit is None else min(limit, self.total_frames)
        for frame in range(begin, end):
            if self._free[frame]:
                run += 1
                if run == count:
                    return frame - count + 1
            else:
                run = 0
        return None

    def free(self, frame: int, count: int = 1) -> None:
        for f in range(frame, frame + count):
            if f < 0 or f >= self.total_frames:
                raise PhysicalMemoryError(f"frame {f} out of range")
            if self._free[f]:
                raise PhysicalMemoryError(f"double free of frame {f}")
            self._free[f] = True
        self.allocated_frames -= count

    def free_address(self, address: int, count: int = 1) -> None:
        if address % PAGE_SIZE:
            raise PhysicalMemoryError("address must be page aligned")
        self.free(address // PAGE_SIZE, count)

    # -- occupancy / fragmentation introspection --------------------------------
    #
    # The compaction daemon reads these; they are also the substrate of
    # ``repro.policy.fragmentation``'s external-fragmentation index.

    def free_runs(self, tier: Optional[str] = None) -> List[Tuple[int, int]]:
        """Maximal runs of free frames as (start_frame, length), ascending.

        Reserved-low frames are never free, so they never appear.  With
        ``tier`` set, runs are clipped to that tier's frame range.
        """
        lo, hi = self.tier_bounds(tier)
        runs: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for frame in range(lo, hi):
            if self._free[frame]:
                if start is None:
                    start = frame
            elif start is not None:
                runs.append((start, frame - start))
                start = None
        if start is not None:
            runs.append((start, hi - start))
        return runs

    def largest_free_run(self, tier: Optional[str] = None) -> int:
        """Length of the largest contiguous free frame run (0 if none)."""
        return max((length for _, length in self.free_runs(tier)), default=0)
