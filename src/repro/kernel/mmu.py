"""The MMU: TLB hierarchy + pagewalker over the radix page table.

This is the hardware half of the traditional model (Figure 1a) that CARAT
proposes to remove.  ``translate`` implements the access path: L1 DTLB →
STLB → pagewalk, charging the cost model at each level, raising
:class:`PageFault` for unmapped or permission-violating accesses so the
kernel can demand-page, copy-on-write, or kill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.kernel.pagetable import PAGE_SHIFT, PAGE_SIZE, PTE, PTE_DIRTY, PageTable
from repro.kernel.tlb import TLB, intel_l1_dtlb, intel_stlb
from repro.machine.costs import DEFAULT_COSTS, CostModel


class PageFault(ReproError):
    """Raised on a translation failure; the kernel's fault handler decides
    whether it is a demand-page opportunity or a real segfault."""

    def __init__(self, vaddr: int, access: str, present: bool) -> None:
        kind = "protection" if present else "not-present"
        super().__init__(f"page fault ({kind}): {access} at {vaddr:#x}")
        self.vaddr = vaddr
        self.access = access
        self.present = present

    @property
    def vpn(self) -> int:
        return self.vaddr >> PAGE_SHIFT


@dataclass
class MMUStats:
    accesses: int = 0
    dtlb_misses: int = 0
    stlb_misses: int = 0
    pagewalks: int = 0
    walk_cycles: int = 0
    translation_cycles: int = 0
    faults: int = 0

    def dtlb_mpki(self, instructions: int) -> float:
        """DTLB misses per 1000 instructions — Figure 2's metric."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.dtlb_misses / instructions

    def walks_per_1k(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.pagewalks / instructions

    def mean_walk_cycles(self) -> float:
        return self.walk_cycles / self.pagewalks if self.pagewalks else 0.0


class MMU:
    def __init__(
        self,
        page_table: PageTable,
        dtlb: Optional[TLB] = None,
        stlb: Optional[TLB] = None,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        self.page_table = page_table
        self.dtlb = dtlb if dtlb is not None else intel_l1_dtlb()
        self.stlb = stlb if stlb is not None else intel_stlb()
        self.costs = costs
        self.stats = MMUStats()

    def translate(self, vaddr: int, access: str = "read") -> Tuple[int, int]:
        """Virtual address -> (physical address, cycles charged).

        Raises :class:`PageFault` when unmapped or the access kind is not
        permitted by the PTE.
        """
        self.stats.accesses += 1
        vpn = vaddr >> PAGE_SHIFT
        offset = vaddr & (PAGE_SIZE - 1)
        cycles = self.costs.tlb_hit

        pte = self.dtlb.lookup(vpn)
        if pte is None:
            self.stats.dtlb_misses += 1
            pte = self.stlb.lookup(vpn)
            if pte is not None:
                cycles += self.costs.stlb_hit
                self.dtlb.insert(vpn, pte)
            else:
                self.stats.stlb_misses += 1
                pte, cycles_walk = self._pagewalk(vpn)
                cycles += cycles_walk
                if pte is None:
                    self.stats.faults += 1
                    self.stats.translation_cycles += cycles
                    raise PageFault(vaddr, access, present=False)
                self.stlb.insert(vpn, pte)
                self.dtlb.insert(vpn, pte)

        if not pte.allows(access):
            self.stats.faults += 1
            self.stats.translation_cycles += cycles
            raise PageFault(vaddr, access, present=True)
        if access == "write":
            pte.flags |= PTE_DIRTY
        self.stats.translation_cycles += cycles
        return (pte.pfn << PAGE_SHIFT) | offset, cycles

    def _pagewalk(self, vpn: int) -> Tuple[Optional[PTE], int]:
        self.stats.pagewalks += 1
        pte, levels = self.page_table.walk(vpn)
        # The paper measures ~47 cycles per walk on average (up to 108);
        # charge proportionally to the levels actually touched.
        cycles = self.costs.pagewalk * levels // 4
        self.stats.walk_cycles += cycles
        return pte, cycles

    # -- invalidation (the shootdown analog) -----------------------------------------

    def invalidate_page(self, vpn: int) -> None:
        self.dtlb.invalidate(vpn)
        self.stlb.invalidate(vpn)

    def invalidate_range(self, vpn_lo: int, vpn_hi: int) -> int:
        return self.dtlb.invalidate_range(vpn_lo, vpn_hi) + self.stlb.invalidate_range(
            vpn_lo, vpn_hi
        )

    def flush_all(self) -> None:
        self.dtlb.flush()
        self.stlb.flush()
