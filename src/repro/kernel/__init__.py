"""The simulated kernel substrate.

* :mod:`repro.kernel.physmem` — physical memory + frame allocator
* :mod:`repro.kernel.heap` — the libc-malloc stand-in
* :mod:`repro.kernel.pagetable` — 4-level radix page table
* :mod:`repro.kernel.tlb` — set-associative TLBs (L1 DTLB, STLB)
* :mod:`repro.kernel.mmu` — the translation path + pagewalker
* :mod:`repro.kernel.mmu_notifier` — paging event trace (Table 2)
* :mod:`repro.kernel.process` / :mod:`repro.kernel.loader` — processes
* :mod:`repro.kernel.kernel` — the :class:`Kernel` facade
* :mod:`repro.kernel.swap` — swapping via non-canonical addresses
"""

from repro.kernel.heap import HeapAllocator, HeapError
from repro.kernel.kernel import Kernel, KernelStats
from repro.kernel.loader import (
    code_segment_size,
    constant_to_bytes,
    layout_globals,
    static_footprint_pages,
    validate_binary,
)
from repro.kernel.mmu import MMU, MMUStats, PageFault
from repro.kernel.mmu_notifier import EventKind, MMUNotifier, NotifierEvent
from repro.kernel.pagetable import (
    PAGE_SIZE,
    PTE,
    PTE_EXEC,
    PTE_PRESENT,
    PTE_WRITE,
    PageTable,
)
from repro.kernel.physmem import FrameAllocator, PhysicalMemory
from repro.kernel.process import MemoryLayout, Process
from repro.kernel.tlb import TLB, TLBStats, intel_l1_dtlb, intel_stlb

__all__ = [
    "HeapAllocator",
    "HeapError",
    "Kernel",
    "KernelStats",
    "code_segment_size",
    "constant_to_bytes",
    "layout_globals",
    "static_footprint_pages",
    "validate_binary",
    "MMU",
    "MMUStats",
    "PageFault",
    "EventKind",
    "MMUNotifier",
    "NotifierEvent",
    "PAGE_SIZE",
    "PTE",
    "PTE_EXEC",
    "PTE_PRESENT",
    "PTE_WRITE",
    "PageTable",
    "FrameAllocator",
    "PhysicalMemory",
    "MemoryLayout",
    "Process",
    "TLB",
    "TLBStats",
    "intel_l1_dtlb",
    "intel_stlb",
]
