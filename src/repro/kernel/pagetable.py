"""Four-level radix page table (the x64 layout).

Virtual addresses are 48-bit: four 9-bit indices (PML4, PDPT, PD, PT)
over 4 KB pages.  Each level is a 512-entry table; the walker descends
all four, which is what makes TLB misses expensive and why Figure 2's
miss rates translate into the pagewalk costs the paper measures.

PTEs carry the physical frame, permissions, and accessed/dirty bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import KernelError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
LEVELS = 4
INDEX_BITS = 9
ENTRIES_PER_TABLE = 1 << INDEX_BITS
VADDR_BITS = PAGE_SHIFT + LEVELS * INDEX_BITS  # 48

PTE_PRESENT = 0x1
PTE_WRITE = 0x2
PTE_EXEC = 0x4
PTE_ACCESSED = 0x8
PTE_DIRTY = 0x10


@dataclass
class PTE:
    """A leaf page-table entry."""

    pfn: int
    flags: int = PTE_PRESENT | PTE_WRITE

    @property
    def present(self) -> bool:
        return bool(self.flags & PTE_PRESENT)

    @property
    def writable(self) -> bool:
        return bool(self.flags & PTE_WRITE)

    @property
    def executable(self) -> bool:
        return bool(self.flags & PTE_EXEC)

    def allows(self, access: str) -> bool:
        if not self.present:
            return False
        if access == "write":
            return self.writable
        if access == "exec":
            return self.executable
        return True  # read

    def __repr__(self) -> str:
        bits = "".join(
            ch if self.flags & bit else "-"
            for ch, bit in (
                ("p", PTE_PRESENT),
                ("w", PTE_WRITE),
                ("x", PTE_EXEC),
                ("a", PTE_ACCESSED),
                ("d", PTE_DIRTY),
            )
        )
        return f"<PTE pfn={self.pfn:#x} {bits}>"


def split_vpn(vpn: int) -> Tuple[int, int, int, int]:
    """VPN -> (pml4, pdpt, pd, pt) indices."""
    pt = vpn & (ENTRIES_PER_TABLE - 1)
    pd = (vpn >> INDEX_BITS) & (ENTRIES_PER_TABLE - 1)
    pdpt = (vpn >> (2 * INDEX_BITS)) & (ENTRIES_PER_TABLE - 1)
    pml4 = (vpn >> (3 * INDEX_BITS)) & (ENTRIES_PER_TABLE - 1)
    return pml4, pdpt, pd, pt


class PageTable:
    """The radix tree.  Inner nodes are dicts (sparse 512-entry tables)."""

    def __init__(self) -> None:
        self._root: Dict[int, Dict[int, Dict[int, Dict[int, PTE]]]] = {}
        self.mapped_pages = 0

    # -- mutation --------------------------------------------------------------

    def map(self, vpn: int, pfn: int, flags: int = PTE_PRESENT | PTE_WRITE) -> PTE:
        pml4, pdpt, pd, pt = split_vpn(vpn)
        level3 = self._root.setdefault(pml4, {})
        level2 = level3.setdefault(pdpt, {})
        level1 = level2.setdefault(pd, {})
        if pt in level1 and level1[pt].present:
            raise KernelError(f"vpn {vpn:#x} is already mapped")
        entry = PTE(pfn, flags | PTE_PRESENT)
        level1[pt] = entry
        self.mapped_pages += 1
        return entry

    def unmap(self, vpn: int) -> PTE:
        entry = self._leaf(vpn)
        if entry is None or not entry.present:
            raise KernelError(f"vpn {vpn:#x} is not mapped")
        entry.flags &= ~PTE_PRESENT
        self.mapped_pages -= 1
        return entry

    def remap(self, vpn: int, new_pfn: int) -> Tuple[int, PTE]:
        """Point an existing mapping at a different frame (a page move).
        Returns (old_pfn, pte)."""
        entry = self._leaf(vpn)
        if entry is None or not entry.present:
            raise KernelError(f"vpn {vpn:#x} is not mapped")
        old = entry.pfn
        entry.pfn = new_pfn
        return old, entry

    def protect(self, vpn: int, flags: int) -> PTE:
        entry = self._leaf(vpn)
        if entry is None or not entry.present:
            raise KernelError(f"vpn {vpn:#x} is not mapped")
        entry.flags = flags | PTE_PRESENT
        return entry

    # -- lookup --------------------------------------------------------------------

    def _leaf(self, vpn: int) -> Optional[PTE]:
        pml4, pdpt, pd, pt = split_vpn(vpn)
        level3 = self._root.get(pml4)
        if level3 is None:
            return None
        level2 = level3.get(pdpt)
        if level2 is None:
            return None
        level1 = level2.get(pd)
        if level1 is None:
            return None
        return level1.get(pt)

    def walk(self, vpn: int) -> Tuple[Optional[PTE], int]:
        """Translate like the hardware pagewalker: returns (pte-or-None,
        levels touched).  Levels touched models the walk's memory traffic
        (a missing inner node terminates the walk early)."""
        pml4, pdpt, pd, pt = split_vpn(vpn)
        level3 = self._root.get(pml4)
        if level3 is None:
            return None, 1
        level2 = level3.get(pdpt)
        if level2 is None:
            return None, 2
        level1 = level2.get(pd)
        if level1 is None:
            return None, 3
        entry = level1.get(pt)
        if entry is None or not entry.present:
            return None, 4
        return entry, 4

    def lookup(self, vpn: int) -> Optional[PTE]:
        entry = self._leaf(vpn)
        if entry is not None and entry.present:
            return entry
        return None

    def is_mapped(self, vpn: int) -> bool:
        return self.lookup(vpn) is not None

    def entries(self) -> Iterator[Tuple[int, PTE]]:
        """All present (vpn, pte) pairs, ascending."""
        for pml4 in sorted(self._root):
            for pdpt in sorted(self._root[pml4]):
                for pd in sorted(self._root[pml4][pdpt]):
                    for pt in sorted(self._root[pml4][pdpt][pd]):
                        entry = self._root[pml4][pdpt][pd][pt]
                        if entry.present:
                            vpn = (
                                (pml4 << (3 * INDEX_BITS))
                                | (pdpt << (2 * INDEX_BITS))
                                | (pd << INDEX_BITS)
                                | pt
                            )
                            yield vpn, entry
