"""Process model: the per-process state for both execution modes.

A traditional process owns a page table + MMU and lives in a virtual
layout (code low, heap middle, stack high).  A CARAT process owns a
region set + runtime and lives directly in physical memory, laid out as a
"dark capsule": the default stack below the text/globals, giving one
contiguous region (Section 3's optimal single-region case); the heap is a
second contiguous physical run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.carat.pipeline import CaratBinary
from repro.kernel.heap import HeapAllocator
from repro.kernel.mmu import MMU
from repro.kernel.pagetable import PAGE_SIZE, PageTable
from repro.runtime.regions import RegionSet
from repro.runtime.runtime import CaratRuntime

#: Virtual layout constants for the traditional model (x64-ish).
VIRT_CODE_BASE = 0x0000_0000_0040_0000
VIRT_GLOBALS_BASE = 0x0000_0000_0060_0000
VIRT_HEAP_BASE = 0x0000_0000_1000_0000
VIRT_STACK_TOP = 0x0000_7FFF_FF00_0000


@dataclass
class MemoryLayout:
    """Where each segment lives, in the process's address space (virtual
    for traditional, physical for CARAT)."""

    code_base: int = 0
    code_size: int = 0
    globals_base: int = 0
    globals_size: int = 0
    stack_base: int = 0  # lowest address of the stack
    stack_size: int = 0
    heap_base: int = 0
    heap_size: int = 0

    @property
    def stack_top(self) -> int:
        return self.stack_base + self.stack_size

    def segments(self) -> Dict[str, tuple]:
        return {
            "code": (self.code_base, self.code_size),
            "globals": (self.globals_base, self.globals_size),
            "stack": (self.stack_base, self.stack_size),
            "heap": (self.heap_base, self.heap_size),
        }


@dataclass
class Process:
    pid: int
    name: str
    mode: str  # 'carat' | 'traditional'
    binary: CaratBinary
    layout: MemoryLayout
    #: symbol name -> address (in this process's address space)
    globals_map: Dict[str, int] = field(default_factory=dict)
    # Traditional-model machinery.
    page_table: Optional[PageTable] = None
    mmu: Optional[MMU] = None
    # CARAT-model machinery.
    regions: Optional[RegionSet] = None
    runtime: Optional[CaratRuntime] = None
    # Shared.
    heap: Optional[HeapAllocator] = None
    #: Table 2 bookkeeping.
    static_footprint_pages: int = 0
    initial_pages: int = 0
    demand_page_allocs: int = 0
    pages_moved: int = 0
    exited: bool = False
    exit_code: int = 0

    @property
    def is_carat(self) -> bool:
        return self.mode == "carat"

    @property
    def stack_top(self) -> int:
        return self.layout.stack_top

    def describe(self) -> str:
        lines = [f"process {self.pid} ({self.name!r}, {self.mode})"]
        for segment, (base, size) in self.layout.segments().items():
            lines.append(
                f"  {segment:8s} [{base:#14x}, {base + size:#14x}) "
                f"{size // PAGE_SIZE:6d} pages"
            )
        return "\n".join(lines)
