"""MMU-notifier-style event trace (Section 3, "dynamic paging capture").

The paper instruments Linux's MMU notifier interface to observe two kinds
of events — PTE changes where a valid PTE now points at a different
physical page (a *page move*), and range invalidations — and separately
tracks the physical size of the address space to derive *page
allocations* (which the notifier cannot see, because invalid->valid
transitions need no invalidation).

Our kernel emits the same event vocabulary, so Table 2's columns fall out
of the counters here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class EventKind(enum.Enum):
    #: A valid PTE now points at a different physical page (page move).
    PTE_CHANGE = "pte_change"
    #: A range of translations was invalidated (unmap, protection change).
    INVALIDATE_RANGE = "invalidate_range"
    #: Derived event: the address space grew by a page (demand allocation,
    #: copy-on-write resolution, first touch...).  Not visible through the
    #: real notifier; tracked the way the paper derives it.
    PAGE_ALLOC = "page_alloc"
    #: A page's contents left physical memory (swap out).
    PAGE_SWAP = "page_swap"


@dataclass
class NotifierEvent:
    kind: EventKind
    pid: int
    vpn_lo: int
    vpn_hi: int  # exclusive; == vpn_lo + 1 for single pages
    timestamp_cycles: int = 0
    detail: str = ""


Subscriber = Callable[[NotifierEvent], None]


class MMUNotifier:
    """Event hub: the kernel emits, observers (the Table 2 harness, tests,
    secondary-MMU analogs) subscribe."""

    def __init__(self, keep_events: bool = False) -> None:
        self._subscribers: List[Subscriber] = []
        self.keep_events = keep_events
        self.events: List[NotifierEvent] = []
        self.counts: Dict[EventKind, int] = {kind: 0 for kind in EventKind}

    def subscribe(self, callback: Subscriber) -> None:
        self._subscribers.append(callback)

    def emit(self, event: NotifierEvent) -> None:
        self.counts[event.kind] += 1
        if self.keep_events:
            self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    # -- convenience emitters --------------------------------------------------

    def pte_change(self, pid: int, vpn: int, now: int = 0, detail: str = "") -> None:
        self.emit(NotifierEvent(EventKind.PTE_CHANGE, pid, vpn, vpn + 1, now, detail))

    def invalidate_range(
        self, pid: int, vpn_lo: int, vpn_hi: int, now: int = 0, detail: str = ""
    ) -> None:
        self.emit(
            NotifierEvent(EventKind.INVALIDATE_RANGE, pid, vpn_lo, vpn_hi, now, detail)
        )

    def page_alloc(self, pid: int, vpn: int, now: int = 0, detail: str = "") -> None:
        self.emit(NotifierEvent(EventKind.PAGE_ALLOC, pid, vpn, vpn + 1, now, detail))

    def page_swap(self, pid: int, vpn: int, now: int = 0, detail: str = "") -> None:
        self.emit(NotifierEvent(EventKind.PAGE_SWAP, pid, vpn, vpn + 1, now, detail))

    # -- Table 2 queries ------------------------------------------------------------

    @property
    def page_allocs(self) -> int:
        return self.counts[EventKind.PAGE_ALLOC]

    @property
    def page_moves(self) -> int:
        return self.counts[EventKind.PTE_CHANGE]

    def rates(self, elapsed_seconds: float) -> Dict[str, float]:
        if elapsed_seconds <= 0:
            return {"alloc_rate": 0.0, "move_rate": 0.0}
        return {
            "alloc_rate": self.page_allocs / elapsed_seconds,
            "move_rate": self.page_moves / elapsed_seconds,
        }
