"""Program loader for both execution models (Section 2.2, "Run-time").

For a CARAT binary the loader: validates the signature against the
kernel's trusted toolchains, selects one *contiguous* physical run and
lays the process out as a dark capsule — stack below globals below code —
so the default protection state is a single region (Section 3's optimal
case), carves the heap from the tail of the same run, copies globals'
initializers in, records every static allocation with the runtime (the
"initial change request" that patches global pointers: ours are null or
scalar, so recording is the whole patch), and writes the initial region
set into the runtime's landing zone.

For a traditional binary it builds the virtual layout, eagerly maps code,
globals, and the first stack page (the "initial page table snapshot"),
and leaves heap and deeper stack to demand paging.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Tuple

from repro.carat.pipeline import CaratBinary
from repro.carat.signing import verify_signature
from repro.errors import KernelError, SigningError
from repro.ir.module import GlobalVariable, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    align_of,
    size_of,
    stride_of,
    struct_field_offset,
)
from repro.ir.values import (
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    UndefValue,
)
from repro.kernel.pagetable import PAGE_SIZE

#: Modeled size of one encoded instruction, for code-segment sizing.
BYTES_PER_INSTRUCTION = 8


def page_count(size: int) -> int:
    return max(1, (size + PAGE_SIZE - 1) // PAGE_SIZE)


def page_align(size: int) -> int:
    return page_count(size) * PAGE_SIZE


def constant_to_bytes(constant: Constant, ty: Type) -> bytes:
    """Serialize an initializer under the 64-bit data layout."""
    size = size_of(ty)
    if isinstance(constant, (ConstantZero, UndefValue)) or constant is None:
        return bytes(size)
    if isinstance(constant, ConstantInt):
        assert isinstance(ty, IntType)
        return (constant.value & ty.max_unsigned).to_bytes(size, "little")
    if isinstance(constant, ConstantFloat):
        assert isinstance(ty, FloatType)
        fmt = "<d" if ty.bits == 64 else "<f"
        return struct.pack(fmt, constant.value)
    if isinstance(constant, ConstantNull):
        return bytes(8)
    if isinstance(constant, ConstantArray):
        assert isinstance(ty, ArrayType)
        stride = stride_of(ty.element)
        out = bytearray(size)
        for i, element in enumerate(constant.elements):
            blob = constant_to_bytes(element, ty.element)
            out[i * stride : i * stride + len(blob)] = blob
        return bytes(out)
    if isinstance(constant, ConstantStruct):
        assert isinstance(ty, StructType)
        out = bytearray(size)
        for i, value in enumerate(constant.fields):
            offset = struct_field_offset(ty, i)
            blob = constant_to_bytes(value, ty.fields[i])
            out[offset : offset + len(blob)] = blob
        return bytes(out)
    raise KernelError(f"cannot serialize initializer {constant!r}")


def layout_globals(module: Module, base: int) -> Tuple[Dict[str, int], int]:
    """Assign addresses to globals starting at ``base`` with natural
    alignment.  Returns (symbol map, total size)."""
    addresses: Dict[str, int] = {}
    cursor = base
    for gv in module.globals.values():
        align = max(8, align_of(gv.value_type))
        cursor = (cursor + align - 1) // align * align
        addresses[gv.name] = cursor
        cursor += size_of(gv.value_type)
    return addresses, cursor - base


def static_footprint_pages(binary: CaratBinary) -> int:
    """The paper's "static footprint": pages of all LOAD sections — text
    plus data/bss (globals)."""
    module = binary.module
    code_size = code_segment_size(module)
    _, globals_size = layout_globals(module, 0)
    return page_count(code_size) + page_count(max(1, globals_size))


def code_segment_size(module: Module) -> int:
    instructions = sum(1 for _ in module.instructions())
    return page_align(max(1, instructions) * BYTES_PER_INSTRUCTION)


def write_globals(
    binary: CaratBinary,
    addresses: Dict[str, int],
    write_bytes: Callable[[int, bytes], None],
) -> None:
    """Copy every global's initializer into (process-addressed) memory."""
    for gv in binary.module.globals.values():
        blob = constant_to_bytes(gv.initializer, gv.value_type)  # type: ignore[arg-type]
        write_bytes(addresses[gv.name], blob)


def validate_binary(binary: CaratBinary, trusted_toolchains: set) -> None:
    """The kernel's trust decision: signature must verify and the signing
    toolchain must be trusted."""
    if binary.signature is None:
        raise SigningError(
            f"binary {binary.name!r} is unsigned; the kernel only loads "
            f"signed CARAT binaries"
        )
    ok = verify_signature(
        binary.module,
        binary.signature,
        binary.metadata,
        trusted_toolchains=trusted_toolchains,
    )
    if not ok:
        raise SigningError(
            f"binary {binary.name!r}: signature invalid or toolchain "
            f"{binary.signature.toolchain!r} untrusted"
        )
