"""Set-associative TLB with LRU replacement.

Sized like the hardware the paper measures: a 64-entry 4-way L1 DTLB and
a 1536-entry 12-way STLB ("64 DTLB entries in modern Intel processors...
1536 [STLB entries] on today's generation", Section 3).  Figure 2 is the
DTLB miss counter of this model divided by instructions retired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.pagetable import PTE


@dataclass
class TLBStats:
    lookups: int = 0
    hits: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TLB:
    """One translation cache level.

    Each set is an ordered list (most recent last); lookup cost is uniform
    — associativity is modelled for capacity/conflict behaviour, not
    latency.
    """

    def __init__(self, entries: int = 64, ways: int = 4, name: str = "dtlb") -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.name = name
        self.num_sets = entries // ways
        self.ways = ways
        self.capacity = entries
        # set index -> list of (vpn, pte), LRU first.
        self._sets: List[List[Tuple[int, PTE]]] = [[] for _ in range(self.num_sets)]
        self.stats = TLBStats()

    def _set_for(self, vpn: int) -> List[Tuple[int, PTE]]:
        return self._sets[vpn % self.num_sets]

    def lookup(self, vpn: int) -> Optional[PTE]:
        self.stats.lookups += 1
        entries = self._set_for(vpn)
        for i, (cached_vpn, pte) in enumerate(entries):
            if cached_vpn == vpn:
                # Move to MRU position.
                entries.append(entries.pop(i))
                self.stats.hits += 1
                return pte
        return None

    def insert(self, vpn: int, pte: PTE) -> None:
        entries = self._set_for(vpn)
        for i, (cached_vpn, _) in enumerate(entries):
            if cached_vpn == vpn:
                entries.pop(i)
                break
        if len(entries) >= self.ways:
            entries.pop(0)  # evict LRU
            self.stats.evictions += 1
        entries.append((vpn, pte))

    def invalidate(self, vpn: int) -> bool:
        entries = self._set_for(vpn)
        for i, (cached_vpn, _) in enumerate(entries):
            if cached_vpn == vpn:
                entries.pop(i)
                self.stats.invalidations += 1
                return True
        return False

    def invalidate_range(self, vpn_lo: int, vpn_hi: int) -> int:
        count = 0
        for entries in self._sets:
            kept = [(v, p) for v, p in entries if not vpn_lo <= v < vpn_hi]
            count += len(entries) - len(kept)
            entries[:] = kept
        self.stats.invalidations += count
        return count

    def flush(self) -> None:
        for entries in self._sets:
            self.stats.invalidations += len(entries)
            entries.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def entries(self) -> List[Tuple[int, PTE]]:
        """Snapshot of every cached (vpn, pte) pair, for invariant
        checking — consistency against the page table it caches."""
        return [entry for entries in self._sets for entry in entries]


def intel_l1_dtlb() -> TLB:
    """The 64-entry L1 DTLB of the paper's Haswell-class testbed."""
    return TLB(entries=64, ways=4, name="l1-dtlb")


def intel_stlb() -> TLB:
    """The 1536-entry unified second-level TLB."""
    return TLB(entries=1536, ways=12, name="stlb")
