"""A first-fit heap allocator (the libc malloc stand-in).

The interpreter services the program's ``malloc``/``calloc``/``free``
calls through one of these, carved out of the process's heap region.
First-fit over an address-ordered free list with split on allocation and
coalesce on free — the behaviour (fragmentation, reuse of freed blocks)
matters because allocation addresses feed the Allocation Table and the
escape map, and reuse exercises their delete paths.

Alignment is 16 bytes, like glibc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


class HeapError(ReproError):
    pass


ALIGNMENT = 16


def _align_up(value: int) -> int:
    return (value + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@dataclass
class _FreeBlock:
    address: int
    size: int


class HeapAllocator:
    def __init__(self, base: int, size: int) -> None:
        if base % ALIGNMENT:
            raise HeapError(f"heap base must be {ALIGNMENT}-byte aligned")
        self.base = base
        self.size = size
        self._free: List[_FreeBlock] = [_FreeBlock(base, size)]
        self._allocated: Dict[int, int] = {}  # address -> size
        self.total_allocs = 0
        self.total_frees = 0
        self.peak_bytes = 0
        self.live_bytes = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the address.  Raises
        :class:`HeapError` when the heap is exhausted (the kernel can then
        grow the heap region and retry)."""
        if size <= 0:
            size = 1
        needed = _align_up(size)
        for i, block in enumerate(self._free):
            if block.address >= (1 << 62):
                # Non-canonical (swapped-out) space: the bytes are on disk;
                # never hand them out until the kernel swaps them back in.
                continue
            if block.size >= needed:
                address = block.address
                if block.size == needed:
                    self._free.pop(i)
                else:
                    block.address += needed
                    block.size -= needed
                self._allocated[address] = needed
                self.total_allocs += 1
                self.live_bytes += needed
                self.peak_bytes = max(self.peak_bytes, self.live_bytes)
                return address
        raise HeapError(
            f"heap exhausted: need {needed} bytes, "
            f"largest free block is "
            f"{max((b.size for b in self._free), default=0)}"
        )

    def free(self, address: int) -> int:
        """Release a block; returns its size.  Freeing an unknown address
        raises (heap corruption in a real allocator)."""
        size = self._allocated.pop(address, None)
        if size is None:
            raise HeapError(f"free of unallocated address {address:#x}")
        self.total_frees += 1
        self.live_bytes -= size
        self._insert_free(address, size)
        return size

    def size_of(self, address: int) -> Optional[int]:
        return self._allocated.get(address)

    def owns(self, address: int) -> bool:
        return self.base <= address < self.end

    def _insert_free(self, address: int, size: int) -> None:
        # Keep the free list address-ordered and coalesce neighbours.
        index = 0
        while index < len(self._free) and self._free[index].address < address:
            index += 1
        self._free.insert(index, _FreeBlock(address, size))
        # Coalesce with successor first, then predecessor.
        if index + 1 < len(self._free):
            current, nxt = self._free[index], self._free[index + 1]
            if current.address + current.size == nxt.address:
                current.size += nxt.size
                self._free.pop(index + 1)
        if index > 0:
            prev, current = self._free[index - 1], self._free[index]
            if prev.address + prev.size == current.address:
                prev.size += current.size
                self._free.pop(index)

    def rebase_range(self, lo: int, hi: int, delta: int) -> int:
        """Follow a CARAT page move: every managed address in [lo, hi)
        shifts by ``delta``.

        In the real system the allocator's metadata lives inside process
        memory, so its internal pointers are escapes the runtime patches;
        our metadata lives on the Python side, so the kernel notifies us
        explicitly.  Free blocks straddling a boundary are split; the heap
        may become discontiguous, which is fine — the allocator manages an
        address set, not a contiguous arena.  Returns blocks rebased.
        """
        rebased = 0
        moved: Dict[int, int] = {}
        for address in [a for a in self._allocated if lo <= a < hi]:
            moved[address + delta] = self._allocated.pop(address)
            rebased += 1
        self._allocated.update(moved)
        new_free: List[_FreeBlock] = []
        for block in self._free:
            start, end = block.address, block.address + block.size
            inside_lo, inside_hi = max(start, lo), min(end, hi)
            if inside_lo >= inside_hi:
                new_free.append(block)
                continue
            rebased += 1
            if start < inside_lo:
                new_free.append(_FreeBlock(start, inside_lo - start))
            new_free.append(
                _FreeBlock(inside_lo + delta, inside_hi - inside_lo)
            )
            if inside_hi < end:
                new_free.append(_FreeBlock(inside_hi, end - inside_hi))
        new_free.sort(key=lambda b: b.address)
        # Coalesce adjacent blocks after the shuffle.
        coalesced: List[_FreeBlock] = []
        for block in new_free:
            if coalesced and coalesced[-1].address + coalesced[-1].size == block.address:
                coalesced[-1].size += block.size
            else:
                coalesced.append(block)
        self._free = coalesced
        return rebased

    # -- transactional state capture ---------------------------------------------

    def snapshot_state(self):
        """Opaque copy of the allocator's complete metadata, for the
        transactional move path: a failed move restores it verbatim with
        :meth:`restore_state`.  A snapshot/restore pair is used instead
        of an inverse ``rebase_range`` because the inverse window could
        also catch blocks that legitimately lived in the destination
        range before the move."""
        return (
            [(block.address, block.size) for block in self._free],
            dict(self._allocated),
            self.total_allocs,
            self.total_frees,
            self.live_bytes,
            self.peak_bytes,
        )

    def restore_state(self, state) -> None:
        """Reinstall a :meth:`snapshot_state` capture (rollback path)."""
        free, allocated, allocs, frees, live, peak = state
        self._free = [_FreeBlock(address, size) for address, size in free]
        self._allocated = dict(allocated)
        self.total_allocs = allocs
        self.total_frees = frees
        self.live_bytes = live
        self.peak_bytes = peak

    # -- introspection ----------------------------------------------------------

    def free_bytes(self) -> int:
        return sum(b.size for b in self._free)

    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when unfragmented."""
        total = self.free_bytes()
        if total == 0:
            return 0.0
        largest = max(b.size for b in self._free)
        return 1.0 - largest / total

    def live_allocations(self) -> Dict[int, int]:
        return dict(self._allocated)

    def free_blocks(self) -> List[Tuple[int, int]]:
        """Snapshot of the free list as (address, size) pairs, ascending."""
        return [(block.address, block.size) for block in self._free]

    def check_invariants(self) -> None:
        # Note: after rebase_range the heap may manage addresses outside
        # [base, end), so containment is deliberately not asserted.
        previous_end = None
        for block in self._free:
            assert block.size > 0, "empty free block"
            if previous_end is not None:
                assert block.address > previous_end, (
                    "free list out of order or uncoalesced"
                )
            previous_end = block.address + block.size
        for address, size in self._allocated.items():
            for block in self._free:
                overlap = (
                    address < block.address + block.size
                    and block.address < address + size
                )
                assert not overlap, "allocated block overlaps free block"
