"""The kernel: frame management, loading, faults, and change requests.

One :class:`Kernel` owns physical memory and can host both kinds of
process side by side:

* **traditional** processes get a page table + MMU; the kernel services
  page faults by demand-allocating frames (Table 2's allocation events)
  and can move pages by copy + PTE remap + TLB shootdown (Table 2's move
  events), emitting MMU-notifier events for both;
* **CARAT** processes get a region set + runtime; the kernel's change
  requests run the Figure 8 protocol — world-stop, negotiate, patch,
  move, region update, resume — with every cycle charged to the cost
  model.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.carat.pipeline import CaratBinary
from repro.carat.signing import DEFAULT_TOOLCHAIN
from repro.errors import KernelError, MoveError, SegmentationFault
from repro.kernel.heap import HeapAllocator
from repro.kernel.loader import (
    code_segment_size,
    layout_globals,
    page_align,
    page_count,
    static_footprint_pages,
    validate_binary,
    write_globals,
)
from repro.kernel.mmu import MMU, PageFault
from repro.kernel.mmu_notifier import MMUNotifier
from repro.kernel.pagetable import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_EXEC,
    PTE_PRESENT,
    PTE_WRITE,
    PageTable,
)
from repro.kernel.physmem import FrameAllocator, PhysicalMemory
from repro.kernel.process import (
    VIRT_CODE_BASE,
    VIRT_GLOBALS_BASE,
    VIRT_HEAP_BASE,
    VIRT_STACK_TOP,
    MemoryLayout,
    Process,
)
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.resilience.retry import RetryPolicy
from repro.resilience.transaction import (
    drive_transaction,
    execute_allocation_move,
    execute_page_move,
    execute_protection_change,
)
from repro.runtime.patching import MoveCost, MovePlan, RegisterSnapshot
from repro.runtime.regions import (
    PERM_EXEC,
    PERM_READ,
    PERM_RW,
    PERM_RWX,
    Region,
    RegionSet,
)
from repro.runtime.runtime import CaratRuntime

DEFAULT_MEMORY = 64 * 1024 * 1024
DEFAULT_HEAP = 8 * 1024 * 1024
DEFAULT_STACK = 1 * 1024 * 1024

#: Cost of a page fault trap + kernel entry/exit, beyond the work done.
FAULT_TRAP_CYCLES = 600
#: Cost of a TLB shootdown when the kernel changes a traditional mapping.
SHOOTDOWN_CYCLES = 300


@dataclass
class KernelStats:
    """Kernel service counters.

    One instance is the machine-wide aggregate (``Kernel.stats``); the
    kernel additionally keeps one per tenant (``Kernel.tenant_stats``),
    updated in lockstep through :meth:`Kernel.charge_stat`, so a
    multi-tenant machine can attribute every fault/move/rollback to the
    process that caused it.
    """

    page_faults: int = 0
    demand_allocations: int = 0
    traditional_moves: int = 0
    carat_moves: int = 0
    carat_protection_changes: int = 0
    fault_cycles: int = 0
    move_cycles: int = 0
    #: Transactional move protocol counters (``run --stats`` reports
    #: them; the fault campaign asserts over them).
    moves_attempted: int = 0
    moves_committed: int = 0
    moves_rolled_back: int = 0
    moves_degraded: int = 0
    move_retries: int = 0
    backoff_cycles: int = 0

    def to_dict(self) -> dict:
        """Uniform telemetry schema (``repro.telemetry.metrics``)."""
        return dataclasses.asdict(self)


class Kernel:
    def __init__(
        self,
        memory_size: int = DEFAULT_MEMORY,
        costs: CostModel = DEFAULT_COSTS,
        trusted_toolchains: Optional[set] = None,
        keep_notifier_events: bool = False,
        fast_memory: Optional[int] = None,
    ) -> None:
        self.memory = PhysicalMemory(memory_size, fast_size=fast_memory)
        self.frames = FrameAllocator(
            memory_size,
            fast_frames=(
                fast_memory // PAGE_SIZE if fast_memory is not None else None
            ),
        )
        self.costs = costs
        self.notifier = MMUNotifier(keep_events=keep_notifier_events)
        self.trusted_toolchains = trusted_toolchains or {DEFAULT_TOOLCHAIN}
        self.processes: Dict[int, Process] = {}
        self.stats = KernelStats()
        #: Per-PID service counters, maintained in lockstep with the
        #: aggregate by :meth:`charge_stat`.  Regions, runtimes, heaps,
        #: allocation tables, guard caches, and TLBs are *already* per
        #: :class:`Process`; this splits the last single-owner structure
        #: (the stats) so tenants are fully isolated.
        self.tenant_stats: Dict[int, KernelStats] = {}
        #: The tenant currently on the simulated CPU.  A scheduler sets
        #: it around each quantum; kernel services started while it is
        #: set charge that tenant's stats even when no process object is
        #: in hand.  ``None`` = single-owner (legacy) operation.
        self.current_pid: Optional[int] = None
        #: Per-PID pause samples (cycles of each completed or wasted
        #: change request, world-stop included) — the telemetry source
        #: for per-tenant p99 pause in the multi-tenant benchmark.
        self.pause_log: Dict[int, List[int]] = {}
        #: Attached :class:`~repro.multiproc.ShareManager`; ``None``
        #: means no cross-process page sharing.
        self.shares = None
        self.clock_cycles = 0
        self._next_pid = 1
        #: When True, change requests append Figure-8 step labels here.
        self.trace_protocol = False
        self.protocol_trace: List[str] = []
        #: On a tiered kernel, new capsules land in the capacity tier and
        #: the policy engine promotes what turns out to be hot.
        self.placement_tier: Optional[str] = (
            "slow" if fast_memory is not None else None
        )
        #: Attached memory-policy engine (see :mod:`repro.policy`); driven
        #: from :meth:`advance_clock`.
        self.policy = None
        #: Attached invariant sanitizer (see :mod:`repro.sanitizer`);
        #: notified after every change request and process load.
        self.sanitizer = None
        #: Retry/backoff/watchdog configuration for the transactional
        #: move protocol (see :mod:`repro.resilience`).
        self.retry_policy = RetryPolicy()
        #: Attached step-targeted fault injector
        #: (:class:`~repro.sanitizer.faults.ProtocolFaultInjector`);
        #: ``None`` means no faults ever fire.
        self.fault_injector = None
        #: Attached :class:`~repro.resilience.degrade.DegradationManager`;
        #: when present, exhausted moves degrade (quarantine + pin)
        #: instead of propagating, and admission refuses quarantined
        #: ranges up front.
        self.degradation = None
        #: Attached :class:`~repro.telemetry.Tracer`; every Figure-8
        #: protocol step lands in it as an instant event.
        self.tracer = None
        #: Attached :class:`~repro.resilience.movequeue.MoveQueue`;
        #: when present, policy moves enqueue instead of running the
        #: full protocol synchronously, and :meth:`advance_clock` drains
        #: them incrementally with bounded pauses.
        self.move_queue = None
        #: Attached :class:`~repro.agents.AgentMediator`; when present,
        #: guard-free translation clients (DMA engines, accelerators)
        #: hold pinned leases the move protocol must quiesce.
        self.agents = None

    def _trace(self, step: int, message: str) -> None:
        if self.trace_protocol:
            self.protocol_trace.append(f"step {step:2d}: {message}")
        if self.tracer is not None:
            self.tracer.instant(
                f"fig8.step{step:02d}", "protocol", {"detail": message}
            )

    def _sanitize(self, label: str) -> None:
        if self.sanitizer is not None:
            self.sanitizer.on_change_request(self, label)

    # ------------------------------------------------------------------
    # Per-tenant accounting
    # ------------------------------------------------------------------

    def stats_for(self, pid: int) -> KernelStats:
        """The per-tenant stats block for ``pid`` (created on demand)."""
        stats = self.tenant_stats.get(pid)
        if stats is None:
            stats = KernelStats()
            self.tenant_stats[pid] = stats
        return stats

    def charge_stat(self, name: str, amount: int = 1, pid: Optional[int] = None) -> None:
        """Bump a :class:`KernelStats` counter on the aggregate *and* on
        the owning tenant's block.  ``pid=None`` falls back to
        :attr:`current_pid`; with neither set only the aggregate moves
        (single-owner operation — exactly the old behavior)."""
        setattr(self.stats, name, getattr(self.stats, name) + amount)
        owner = self.current_pid if pid is None else pid
        if owner is not None:
            tenant = self.stats_for(owner)
            setattr(tenant, name, getattr(tenant, name) + amount)

    @contextmanager
    def tenant(self, pid: Optional[int]) -> Iterator[None]:
        """Scope kernel services to one tenant: everything charged while
        the context is open lands in ``pid``'s stats (and, if a tracer is
        attached, its trace lane).  The scheduler wraps each quantum in
        this."""
        previous = self.current_pid
        self.current_pid = pid
        tracer = self.tracer
        previous_lane = None
        if tracer is not None:
            previous_lane = tracer.current_pid
            tracer.current_pid = pid if pid is not None else 0
        try:
            yield
        finally:
            self.current_pid = previous
            if tracer is not None:
                tracer.current_pid = previous_lane

    def record_pause(self, pid: int, cycles: int) -> None:
        """Log one tenant pause (the cycles a change request held the
        world stopped — committed or wasted).  The multi-tenant benchmark
        derives per-tenant p99 pause from this log; a tracer additionally
        gets an instant event on the tenant's lane."""
        self.pause_log.setdefault(pid, []).append(cycles)
        if self.tracer is not None:
            self.tracer.instant(
                "tenant.pause", "kernel", {"cycles": cycles}, pid=pid
            )

    def attach_shares(self, manager) -> None:
        """Install a :class:`~repro.multiproc.ShareManager`: identical
        read-only pages (code/globals) dedup across tenants, writes
        CoW-break through the transactional move path, and policy moves
        refuse shared ranges."""
        self.shares = manager

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load_carat(
        self,
        binary: CaratBinary,
        heap_size: int = DEFAULT_HEAP,
        stack_size: int = DEFAULT_STACK,
        guard_mechanism: str = "mpx",
        share: bool = False,
    ) -> Process:
        """Load a signed CARAT binary: dark-capsule physical layout, one
        initial region, runtime bound and primed with static allocations.

        With ``share=True`` (requires an attached
        :class:`~repro.multiproc.ShareManager`) the read-only image —
        globals + code — is deduplicated across tenants running the same
        binary: the capsule splits into a private RWX run (stack + heap)
        and a shared R-X run mapped by every member.  A write into the
        shared run protection-faults; the scheduler services it as a
        CoW break (see :meth:`~repro.multiproc.ShareManager.
        service_write_fault`)."""
        validate_binary(binary, self.trusted_toolchains)
        module = binary.module
        code_size = code_segment_size(module)
        _, globals_size = layout_globals(module, 0)
        globals_size = page_align(max(1, globals_size))
        stack_size = page_align(stack_size)
        heap_size = page_align(heap_size)

        if share:
            if self.shares is None:
                raise KernelError(
                    "share=True needs a ShareManager (kernel.attach_shares)"
                )
            return self._load_carat_shared(
                binary, module, code_size, globals_size,
                stack_size, heap_size, guard_mechanism,
            )

        total = stack_size + globals_size + code_size + heap_size
        base = self.frames.alloc_address(
            total // PAGE_SIZE, tier=self.placement_tier
        )

        layout = MemoryLayout(
            stack_base=base,
            stack_size=stack_size,
            globals_base=base + stack_size,
            globals_size=globals_size,
            code_base=base + stack_size + globals_size,
            code_size=code_size,
            heap_base=base + stack_size + globals_size + code_size,
            heap_size=heap_size,
        )

        regions = RegionSet([Region(base, total, PERM_RWX)])
        runtime = CaratRuntime(
            self.memory, regions, guard_mechanism=guard_mechanism, costs=self.costs
        )
        # The patcher validates move destinations against the kernel's
        # frame allocator (refusing unbacked ranges with a MoveError).
        runtime.patcher.frames = self.frames

        globals_map, _ = layout_globals(module, layout.globals_base)
        write_globals(binary, globals_map, self.memory.write_bytes)

        # Static allocations are recorded at load time (Section 4.1.2).
        for gv in module.globals.values():
            from repro.ir.types import size_of

            runtime.on_alloc(globals_map[gv.name], max(1, size_of(gv.value_type)), "global")
        runtime.on_alloc(layout.stack_base, layout.stack_size, "stack")
        runtime.on_alloc(layout.code_base, layout.code_size, "code")
        # Load-time bookkeeping is free for the program.
        runtime.stats.tracking_events = 0
        runtime.stats.tracking_cycles = 0

        process = Process(
            pid=self._next_pid,
            name=binary.name,
            mode="carat",
            binary=binary,
            layout=layout,
            globals_map=globals_map,
            regions=regions,
            runtime=runtime,
            heap=HeapAllocator(layout.heap_base, layout.heap_size),
            static_footprint_pages=static_footprint_pages(binary),
            initial_pages=total // PAGE_SIZE,
        )
        self._next_pid += 1
        self.processes[process.pid] = process
        if self.sanitizer is not None:
            self.sanitizer.on_process_loaded(process)
        self._sanitize("load-carat")
        return process

    def _load_carat_shared(
        self,
        binary: CaratBinary,
        module,
        code_size: int,
        globals_size: int,
        stack_size: int,
        heap_size: int,
        guard_mechanism: str,
    ) -> Process:
        """The ``share=True`` half of :meth:`load_carat`: private
        stack+heap run, deduplicated globals+code run.

        The shared run is keyed on the binary's signed image; the first
        tenant materializes it (frames + globals written), later tenants
        just attach — their loads write *nothing* into the shared range,
        which is correct because the range is read-only for everyone, so
        the canonical frames always hold pristine initial values."""
        assert self.shares is not None
        private_total = stack_size + heap_size
        private_base = self.frames.alloc_address(
            private_total // PAGE_SIZE, tier=self.placement_tier
        )
        shared_total = globals_size + code_size
        shared_pages = shared_total // PAGE_SIZE
        pid = self._next_pid

        image_key = self.shares.image_key(binary)
        group = self.shares.lookup(image_key)
        fresh_image = group is None
        if group is None:
            shared_base = self.frames.alloc_address(
                shared_pages, tier=self.placement_tier
            )
            group = self.shares.register(image_key, shared_base, shared_pages)
        shared_base = group.base
        self.shares.attach(group, pid)

        layout = MemoryLayout(
            stack_base=private_base,
            stack_size=stack_size,
            globals_base=shared_base,
            globals_size=globals_size,
            code_base=shared_base + globals_size,
            code_size=code_size,
            heap_base=private_base + stack_size,
            heap_size=heap_size,
        )

        regions = RegionSet([
            Region(private_base, private_total, PERM_RWX),
            Region(shared_base, shared_total, PERM_READ | PERM_EXEC),
        ])
        runtime = CaratRuntime(
            self.memory, regions, guard_mechanism=guard_mechanism, costs=self.costs
        )
        runtime.patcher.frames = self.frames

        globals_map, _ = layout_globals(module, layout.globals_base)
        if fresh_image:
            write_globals(binary, globals_map, self.memory.write_bytes)

        # Every member tracks its own view of the shared image — the
        # Allocation Table is per-process even when the frames are not.
        for gv in module.globals.values():
            from repro.ir.types import size_of

            runtime.on_alloc(
                globals_map[gv.name], max(1, size_of(gv.value_type)), "global"
            )
        runtime.on_alloc(layout.stack_base, layout.stack_size, "stack")
        runtime.on_alloc(layout.code_base, layout.code_size, "code")
        runtime.stats.tracking_events = 0
        runtime.stats.tracking_cycles = 0

        process = Process(
            pid=pid,
            name=binary.name,
            mode="carat",
            binary=binary,
            layout=layout,
            globals_map=globals_map,
            regions=regions,
            runtime=runtime,
            heap=HeapAllocator(layout.heap_base, layout.heap_size),
            static_footprint_pages=static_footprint_pages(binary),
            initial_pages=(private_total + shared_total) // PAGE_SIZE,
        )
        self._next_pid += 1
        self.processes[pid] = process
        if self.sanitizer is not None:
            self.sanitizer.on_process_loaded(process)
        self._sanitize("load-carat-shared")
        return process

    def load_traditional(
        self,
        binary: CaratBinary,
        heap_size: int = DEFAULT_HEAP,
        stack_size: int = DEFAULT_STACK,
    ) -> Process:
        """Load under the paging model: virtual layout, code/globals and
        the top stack page mapped eagerly, everything else demand-paged."""
        module = binary.module
        code_size = code_segment_size(module)
        _, globals_size = layout_globals(module, 0)
        globals_size = page_align(max(1, globals_size))
        stack_size = page_align(stack_size)
        heap_size = page_align(heap_size)

        layout = MemoryLayout(
            code_base=VIRT_CODE_BASE,
            code_size=code_size,
            globals_base=VIRT_GLOBALS_BASE,
            globals_size=globals_size,
            heap_base=VIRT_HEAP_BASE,
            heap_size=heap_size,
            stack_base=VIRT_STACK_TOP - stack_size,
            stack_size=stack_size,
        )

        page_table = PageTable()
        mmu = MMU(page_table, costs=self.costs)
        process = Process(
            pid=self._next_pid,
            name=binary.name,
            mode="traditional",
            binary=binary,
            layout=layout,
            page_table=page_table,
            mmu=mmu,
            heap=HeapAllocator(layout.heap_base, layout.heap_size),
            static_footprint_pages=static_footprint_pages(binary),
        )
        self._next_pid += 1
        self.processes[process.pid] = process

        # Initial mapping: code (r-x), globals (rw-), top stack page (rw-).
        self._map_range(
            process, layout.code_base, code_size, PTE_PRESENT | PTE_EXEC
        )
        self._map_range(
            process, layout.globals_base, globals_size, PTE_PRESENT | PTE_WRITE
        )
        top_page = layout.stack_top - PAGE_SIZE
        self._map_range(process, top_page, PAGE_SIZE, PTE_PRESENT | PTE_WRITE)
        process.initial_pages = page_table.mapped_pages

        globals_map, _ = layout_globals(module, layout.globals_base)
        process.globals_map = globals_map
        write_globals(binary, globals_map, lambda a, b: self._write_virtual(process, a, b))
        if self.sanitizer is not None:
            self.sanitizer.on_process_loaded(process)
        self._sanitize("load-traditional")
        return process

    def _map_range(self, process: Process, vbase: int, size: int, flags: int) -> None:
        assert process.page_table is not None
        for offset in range(0, page_align(size), PAGE_SIZE):
            vpn = (vbase + offset) >> PAGE_SHIFT
            if process.page_table.is_mapped(vpn):
                continue
            frame = self.frames.alloc()
            self.memory.fill(frame * PAGE_SIZE, PAGE_SIZE, 0)
            process.page_table.map(vpn, frame, flags)

    def _write_virtual(self, process: Process, vaddr: int, data: bytes) -> None:
        """Loader-path write: walks the page table directly (no TLB)."""
        assert process.page_table is not None
        offset = 0
        while offset < len(data):
            address = vaddr + offset
            vpn = address >> PAGE_SHIFT
            pte = process.page_table.lookup(vpn)
            if pte is None:
                raise KernelError(f"loader write to unmapped page {vpn:#x}")
            page_offset = address & (PAGE_SIZE - 1)
            chunk = min(len(data) - offset, PAGE_SIZE - page_offset)
            self.memory.write_bytes(
                (pte.pfn << PAGE_SHIFT) | page_offset, data[offset : offset + chunk]
            )
            offset += chunk

    # ------------------------------------------------------------------
    # Traditional-model services
    # ------------------------------------------------------------------

    def handle_page_fault(self, process: Process, fault: PageFault) -> int:
        """Demand paging: a fault inside a valid segment maps a fresh
        zeroed frame (one Table 2 allocation event); anything else is a
        real segfault."""
        if process.page_table is None:
            raise KernelError("page fault for a non-traditional process")
        vaddr = fault.vaddr
        segment = self._segment_of(process, vaddr)
        if segment is None or fault.present:
            raise SegmentationFault(vaddr, fault.access)
        self.charge_stat("page_faults", pid=process.pid)
        frame = self.frames.alloc()
        self.memory.fill(frame * PAGE_SIZE, PAGE_SIZE, 0)
        flags = PTE_PRESENT | PTE_WRITE
        if segment == "code":
            flags = PTE_PRESENT | PTE_EXEC
        process.page_table.map(fault.vpn, frame, flags)
        process.demand_page_allocs += 1
        self.charge_stat("demand_allocations", pid=process.pid)
        self.notifier.page_alloc(process.pid, fault.vpn, self.clock_cycles)
        cycles = FAULT_TRAP_CYCLES
        self.charge_stat("fault_cycles", cycles, pid=process.pid)
        self._sanitize("page-fault")
        return cycles

    def _segment_of(self, process: Process, vaddr: int) -> Optional[str]:
        for name, (base, size) in process.layout.segments().items():
            if base <= vaddr < base + size:
                return name
        return None

    def move_page_traditional(self, process: Process, vaddr: int) -> int:
        """Copy a page to a new frame and remap: the paging model's page
        move (constant-time PTE update + shootdown)."""
        if process.page_table is None or process.mmu is None:
            raise KernelError("not a traditional process")
        vpn = vaddr >> PAGE_SHIFT
        pte = process.page_table.lookup(vpn)
        if pte is None:
            raise KernelError(f"cannot move unmapped page {vpn:#x}")
        new_frame = self.frames.alloc()
        self.memory.copy(pte.pfn << PAGE_SHIFT, new_frame * PAGE_SIZE, PAGE_SIZE)
        old_frame, _ = process.page_table.remap(vpn, new_frame)
        self.frames.free(old_frame)
        process.mmu.invalidate_page(vpn)
        process.pages_moved += 1
        self.charge_stat("traditional_moves", pid=process.pid)
        self.notifier.pte_change(process.pid, vpn, self.clock_cycles)
        self.notifier.invalidate_range(process.pid, vpn, vpn + 1, self.clock_cycles)
        cycles = SHOOTDOWN_CYCLES + int(self.costs.move_per_byte * PAGE_SIZE)
        self.charge_stat("move_cycles", cycles, pid=process.pid)
        self._sanitize("traditional-move")
        return cycles

    # ------------------------------------------------------------------
    # CARAT-model change requests (Figure 8)
    # ------------------------------------------------------------------

    def request_page_move(
        self,
        process: Process,
        page_address: int,
        page_count_: int = 1,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        destination: Optional[int] = None,
        thread_count: int = 1,
        reason: str = "carat-move",
    ) -> Tuple[MovePlan, MoveCost, int]:
        """Steps 1-12: move ``page_count_`` pages starting at
        ``page_address``.  Returns (plan, cost breakdown, total cycles
        including the world stop).

        ``reason`` labels the MMU-notifier event so trace consumers
        (Table 2 accounting, the policy benchmarks) can attribute the
        move to its initiator — e.g. ``policy-compaction``,
        ``policy-promote``, ``policy-demote``.

        The request runs as a transaction (see :mod:`repro.resilience`):
        any fault rolls every step back, transient faults retry with
        backoff, and exhaustion raises a structured
        :class:`~repro.errors.MoveError` with the machine verified back
        in its pre-move state."""
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            raise KernelError("not a CARAT process")
        lo = page_address & ~(PAGE_SIZE - 1)
        hi = lo + page_count_ * PAGE_SIZE
        self._check_admission(
            process, "page-move", lo, hi, reason=reason,
            destination=destination,
        )
        return drive_transaction(
            self,
            process,
            runtime,
            "page-move",
            lambda txn: execute_page_move(
                txn,
                self,
                process,
                lo,
                hi,
                register_snapshots,
                destination,
                thread_count,
                reason,
            ),
            lo,
            hi,
        )

    def _check_admission(
        self,
        process,
        operation: str,
        lo: int,
        hi: int,
        reason: str = "carat-move",
        destination: Optional[int] = None,
    ) -> None:
        """Admission control, before any work (no world stop, no attempt
        counted): a range the DegradationManager has quarantined is
        refused, and so is a range holding CoW-shared pages — shared
        frames are pinned for everyone except the CoW-break service
        itself (``reason="cow-break"``), which is *how* a page leaves
        the share.  A known ``destination`` overlapping a live
        translation-client lease is refused too: an agent is streaming
        those bytes guard-free, so nothing may land on them (a *source*
        overlapping a lease is fine — the ``quiesce-agents`` step drains
        it mid-protocol)."""
        if self.degradation is not None and not self.degradation.allows(lo, hi):
            raise MoveError(
                f"{operation} of [{lo:#x}, {hi:#x}) refused: range is "
                f"quarantined (pinned after repeated move failures)",
                step="admission",
                lo=lo,
                hi=hi,
            )
        if (
            self.shares is not None
            and reason != "cow-break"
            and self.shares.range_shared(process.pid, lo, hi)
        ):
            raise MoveError(
                f"{operation} of [{lo:#x}, {hi:#x}) refused: range holds "
                f"CoW-shared pages (pinned while other tenants map them)",
                step="admission",
                lo=lo,
                hi=hi,
            )
        if self.agents is not None and destination is not None:
            span = hi - lo
            pinned = self.agents.leases_overlapping(
                destination, destination + span
            )
            if pinned:
                raise MoveError(
                    f"{operation} of [{lo:#x}, {hi:#x}) refused: "
                    f"destination [{destination:#x}, "
                    f"{destination + span:#x}) overlaps "
                    f"{pinned[0].describe()}",
                    step="admission",
                    lo=lo,
                    hi=hi,
                )

    def request_allocation_move(
        self,
        process: Process,
        allocation,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
        destination: Optional[int] = None,
        thread_count: int = 1,
    ) -> Tuple[MoveCost, int]:
        """Allocation-granularity movement (Section 6's future-work
        design): move exactly one allocation, with no page negotiation.

        The destination stays inside the process's permitted regions (the
        kernel carves it from the heap's free space via the process heap
        manager), so the region set is untouched.  Returns (cost, total
        cycles including the world stop).
        """
        runtime = process.runtime
        if runtime is None:
            raise KernelError("not a CARAT process")
        self._check_admission(
            process, "allocation-move", allocation.address, allocation.end
        )
        return drive_transaction(
            self,
            process,
            runtime,
            "allocation-move",
            lambda txn: execute_allocation_move(
                txn,
                self,
                process,
                allocation,
                register_snapshots,
                destination,
                thread_count,
            ),
            allocation.address,
            allocation.end,
        )

    def expand_stack(self, process: Process, extra_bytes: int) -> int:
        """Seamless stack expansion (Section 2.2): a failed call guard
        aborts to the kernel, which grows the stack region downward and
        resumes the thread.  Returns the new stack base."""
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            raise KernelError("not a CARAT process")
        extra = (extra_bytes + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
        layout = process.layout
        old_base = layout.stack_base
        wanted_frame = (old_base - extra) // PAGE_SIZE
        if wanted_frame > 0 and self.frames.alloc_at(wanted_frame, extra // PAGE_SIZE):
            # Physically adjacent below the old stack: simply extend.
            new_base = wanted_frame * PAGE_SIZE
            layout.stack_base = new_base
            layout.stack_size += extra
        else:
            raise KernelError(
                "cannot expand the stack contiguously; the kernel would "
                "have to move the whole capsule (a page-move request)"
            )
        regions.add(Region(new_base, extra, PERM_RWX))
        regions.coalesce()
        # Grow the stack's Allocation Table entry in place so allocas that
        # straddle the old floor still sit inside one tracked block.
        stack_entry = runtime.table.at(old_base)
        if stack_entry is not None and stack_entry.kind == "stack":
            runtime.table.rebase(stack_entry, new_base)
            stack_entry.size += extra
        else:
            runtime.on_alloc(new_base, extra, "stack")
        self._sanitize("stack-expand")
        return layout.stack_base

    def request_protection_change(
        self,
        process: Process,
        base: int,
        length: int,
        perms: int,
        thread_count: int = 1,
    ) -> int:
        """A protection change is the simpler variant: world-stop, region
        entry modification, resume — no patching (Section 4.4)."""
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            raise KernelError("not a CARAT process")
        # Protection changes never charged stats.move_cycles; the
        # transactional path keeps that accounting.
        (total,) = drive_transaction(
            self,
            process,
            runtime,
            "protection-change",
            lambda txn: execute_protection_change(
                txn, self, process, base, length, perms, thread_count
            ),
            base,
            base + length,
            charge_move_cycles=False,
        )
        return total

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def exit_process(self, process: Process, code: int = 0) -> None:
        process.exited = True
        process.exit_code = code

    def attach_policy(self, engine) -> None:
        """Install a memory-policy engine (see :mod:`repro.policy`); its
        epochs fire from :meth:`advance_clock`."""
        self.policy = engine

    def attach_sanitizer(self, sanitizer) -> None:
        """Install an invariant sanitizer (see :mod:`repro.sanitizer`);
        it is notified after every change request and process load."""
        self.sanitizer = sanitizer

    def attach_fault_injector(self, injector) -> None:
        """Install a step-targeted protocol fault injector
        (:class:`~repro.sanitizer.faults.ProtocolFaultInjector`); every
        change request's step boundaries and mid-step progress points
        consult it."""
        self.fault_injector = injector

    def attach_degradation(self, manager) -> None:
        """Install a :class:`~repro.resilience.degrade.DegradationManager`:
        exhausted moves then quarantine their range (pinning its pages)
        and record a structured failure instead of propagating raw."""
        self.degradation = manager

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`~repro.telemetry.Tracer`: Figure-8 steps and
        transactional-move outcomes become structured trace events.  The
        tracer observes only — it never charges a cycle anywhere."""
        self.tracer = tracer

    def attach_move_queue(self, queue) -> None:
        """Install a :class:`~repro.resilience.movequeue.MoveQueue`:
        policy moves become asynchronous — enqueued with their
        destination claimed, pre-copied in bounded chunks from
        :meth:`advance_clock` (and the scheduler's quantum boundaries),
        and flipped in one short batched world stop."""
        self.move_queue = queue

    def attach_agents(self, mediator) -> None:
        """Install an :class:`~repro.agents.AgentMediator`: registered
        translation clients (see :mod:`repro.agents`) stream leased
        memory guard-free from :meth:`advance_clock`, and every move
        request gains the ``quiesce-agents`` protocol step plus
        lease-aware admission control."""
        self.agents = mediator

    def advance_clock(self, cycles: int) -> None:
        self.clock_cycles += cycles
        if self.policy is not None:
            self.policy.on_clock(self)
        if self.move_queue is not None:
            self.move_queue.step()
        if self.agents is not None:
            self.agents.step()
