"""Swapping and demand paging for CARAT via non-canonical addresses.

Section 2.2: "To make a page unavailable, we patch its affected pointers
to a physical address that will cause a fault.  In x64 systems, one
option is to use a non-canonical address.  Since the range of
non-canonical addresses is vast, the specific non-canonical address can
be used to encode different conditions."

We encode a swapped-out byte at original physical address ``p`` as
``NONCANONICAL_BASE | p``: any guard that sees such an address faults
(it is inside no region), the fault handler recognizes the encoding,
swaps the page set back in (possibly at a *different* physical address),
patches every escape and register again, and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelError, ProtectionFault
from repro.kernel.kernel import Kernel
from repro.kernel.pagetable import PAGE_SIZE
from repro.kernel.process import Process
from repro.runtime.patching import MovePlan, RegisterSnapshot
from repro.runtime.regions import Region

#: Bit 62 set marks the swapped-out condition (bit 63 would make Python
#: sign-handling noisier; any non-canonical pattern works — the encoding
#: just has to be outside every possible region).
NONCANONICAL_BASE = 1 << 62


def is_noncanonical(address: int) -> bool:
    return bool(address & NONCANONICAL_BASE)


def decode(address: int) -> int:
    """The original physical address a swapped pointer encodes."""
    return address & ~NONCANONICAL_BASE


@dataclass
class SwapRecord:
    original_lo: int
    original_hi: int
    data: bytes
    perms: int
    allocations: List[int]  # original allocation base addresses


class SwapManager:
    """Swap device + the CARAT-side swap-out/in protocol."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        #: "disk": swapped-out page sets keyed by original low address.
        self._store: Dict[int, SwapRecord] = {}
        self.swap_outs = 0
        self.swap_ins = 0

    @property
    def resident_records(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    # Swap out
    # ------------------------------------------------------------------

    def swap_out(
        self,
        process: Process,
        page_address: int,
        page_count: int = 1,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> SwapRecord:
        """Evict the page set containing ``page_address``: patch every
        escape/register into it to the non-canonical encoding, save the
        bytes, withdraw the region, free the frames."""
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            raise KernelError("swap_out requires a CARAT process")
        lo = page_address & ~(PAGE_SIZE - 1)
        plan = runtime.patcher.plan_move(lo, lo + page_count * PAGE_SIZE)
        if plan.lo in self._store:
            raise KernelError(f"range at {plan.lo:#x} is already swapped out")
        runtime.world_stop()
        runtime.flush_escapes()

        delta = NONCANONICAL_BASE  # new = old | BASE == old + BASE (bit clear)
        self._patch_range(process, plan, delta, register_snapshots)

        source_region = regions.find(plan.lo)
        perms = source_region.perms if source_region is not None else 0
        data = self.kernel.memory.read_bytes(plan.lo, plan.length)
        record = SwapRecord(
            original_lo=plan.lo,
            original_hi=plan.hi,
            data=data,
            perms=perms,
            allocations=[a.address for a in plan.allocations],
        )
        # Rebase tracking structures into non-canonical space so the
        # allocation table still knows these blocks exist.
        for allocation in plan.allocations:
            old = allocation.address
            runtime.table.rebase(allocation, old + delta)
            runtime.escapes.rekey(old, allocation.address)
        runtime.escapes.rewrite_range(plan.lo, plan.hi, delta)

        regions.remove_range(plan.lo, plan.hi)
        regions.coalesce()
        if process.heap is not None:
            # Heap metadata follows the pointers into encoded space; the
            # allocator never hands out non-canonical free blocks.
            process.heap.rebase_range(plan.lo, plan.hi, delta)
        self.kernel.frames.free_address(plan.lo, plan.length // PAGE_SIZE)
        self._store[plan.lo] = record
        self.swap_outs += 1
        self.kernel.notifier.page_swap(
            process.pid, plan.lo >> 12, self.kernel.clock_cycles
        )
        runtime.resume()
        return record

    # ------------------------------------------------------------------
    # Swap in
    # ------------------------------------------------------------------

    def handle_fault(
        self,
        process: Process,
        fault: ProtectionFault,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> int:
        """Service a guard fault: if the address encodes a swapped page,
        bring it back and return the new physical address of the faulting
        byte.  Re-raises for genuine protection violations."""
        if not is_noncanonical(fault.address):
            raise fault
        original = decode(fault.address)
        record = self._find_record(original)
        if record is None:
            raise fault
        new_base = self.swap_in(process, record, register_snapshots)
        return new_base + (original - record.original_lo)

    def _find_record(self, original_address: int) -> Optional[SwapRecord]:
        for record in self._store.values():
            if record.original_lo <= original_address < record.original_hi:
                return record
        return None

    def swap_in(
        self,
        process: Process,
        record: SwapRecord,
        register_snapshots: Optional[List[RegisterSnapshot]] = None,
    ) -> int:
        """Restore a swapped range (possibly at a new physical address);
        returns the new base address."""
        runtime = process.runtime
        regions = process.regions
        if runtime is None or regions is None:
            raise KernelError("swap_in requires a CARAT process")
        length = record.original_hi - record.original_lo
        destination = self.kernel.frames.alloc_address(length // PAGE_SIZE)
        runtime.world_stop()
        self.kernel.memory.write_bytes(destination, record.data)

        # Current (encoded) location of the range in pointer space:
        encoded_lo = record.original_lo + NONCANONICAL_BASE
        encoded_hi = record.original_hi + NONCANONICAL_BASE
        delta = destination - encoded_lo

        fake_plan = MovePlan(
            requested_lo=encoded_lo,
            requested_hi=encoded_hi,
            lo=encoded_lo,
            hi=encoded_hi,
            allocations=[
                a
                for base in record.allocations
                for a in [runtime.table.at(base + NONCANONICAL_BASE)]
                if a is not None
            ],
            expand_lookups=0,
        )
        # Escape cells that lived inside the swapped range are resident
        # again (at the destination); move their recorded locations FIRST
        # so the patch pass below can reach the encoded pointers the disk
        # image preserved inside them.
        runtime.escapes.rewrite_range(encoded_lo, encoded_hi, delta)
        self._patch_range(process, fake_plan, delta, register_snapshots)
        for allocation in fake_plan.allocations:
            old = allocation.address
            runtime.table.rebase(allocation, old + delta)
            runtime.escapes.rekey(old, allocation.address)

        regions.add(Region(destination, length, record.perms))
        regions.coalesce()
        if process.heap is not None:
            process.heap.rebase_range(encoded_lo, encoded_hi, delta)
        del self._store[record.original_lo]
        self.swap_ins += 1
        runtime.resume()
        return destination

    # ------------------------------------------------------------------

    def _patch_range(
        self,
        process: Process,
        plan: MovePlan,
        delta: int,
        register_snapshots: Optional[List[RegisterSnapshot]],
    ) -> int:
        """Rewrite every escape (in resident memory) and register pointing
        into [plan.lo, plan.hi) by ``delta``."""
        runtime = process.runtime
        assert runtime is not None
        patched = 0
        for allocation in plan.allocations:
            for location in runtime.escapes.escapes_of(allocation):
                if is_noncanonical(location):
                    continue  # the cell itself is swapped out; its bytes
                    # are on disk and will be patched when restored
                current = self.kernel.memory.read_u64(location)
                if plan.lo <= current < plan.hi:
                    self.kernel.memory.write_u64(location, current + delta)
                    patched += 1
        for snapshot in register_snapshots or []:
            patched += snapshot.patch(plan.lo, plan.hi, delta)
        return patched
