"""Global policy arbitration across tenants: fairness-weighted budgets.

A single-tenant machine runs one :class:`~repro.policy.engine.PolicyEngine`
with one cycle budget.  With N tenants sharing the machine, the budget
itself becomes the contended resource: the :class:`FairnessArbiter`
keeps one heat tracker / compaction daemon / tiering balancer *per
tenant* (policy state is per-PID, like everything else) but splits one
global per-epoch move budget across them proportionally to their
scheduling weights — a heavy tenant gets more move cycles per epoch,
and no tenant can starve another by generating endless compaction work.

On a tiered kernel the arbiter additionally watches fast-tier pressure:
when occupancy crosses ``demote_pressure``, the tenant whose fast-tier
residents carry the least total heat is demoted first (one eviction per
round), freeing near memory for hotter tenants — global arbitration no
per-tenant balancer could do alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.policy.compaction import CompactionDaemon
from repro.policy.engine import PolicyStats
from repro.policy.heat import HeatTracker
from repro.policy.moves import EpochBudget
from repro.policy.tiering import TieringBalancer


@dataclass
class _TenantPolicy:
    """Per-tenant policy state the arbiter schedules."""

    tenant: object
    heat: HeatTracker
    compaction: CompactionDaemon
    tiering: Optional[TieringBalancer]
    stats: PolicyStats = field(default_factory=PolicyStats)
    #: Interpreter cycle count at this tenant's last epoch.
    last_epoch_at: int = 0


class FairnessArbiter:
    """Weighted global policy budgets over N tenants; see module docstring."""

    def __init__(
        self,
        epoch_cycles: int = 50_000,
        budget_cycles: int = 25_000,
        demote_pressure: float = 0.9,
    ) -> None:
        if epoch_cycles < 1 or budget_cycles < 1:
            raise ValueError("epoch_cycles and budget_cycles must be positive")
        if not (0.0 < demote_pressure <= 1.0):
            raise ValueError("demote_pressure must be in (0, 1]")
        self.epoch_cycles = epoch_cycles
        self.budget_cycles = budget_cycles
        self.demote_pressure = demote_pressure
        self.kernel = None
        self.states: Dict[int, _TenantPolicy] = {}
        self.epochs_run = 0
        self.pressure_demotions = 0

    # ------------------------------------------------------------------
    # Wiring (called by the Scheduler after tenants load)
    # ------------------------------------------------------------------

    def wire(self, scheduler) -> None:
        self.kernel = scheduler.kernel
        tiered = self.kernel.frames.tiered
        total_weight = sum(t.spec.weight for t in scheduler.tenants) or 1
        for tenant in scheduler.tenants:
            heat = HeatTracker()
            heat.install(tenant.interpreter)
            compaction = CompactionDaemon(
                self.kernel, tenant.process, heat=heat
            )
            tiering = (
                TieringBalancer(self.kernel, tenant.process, heat)
                if tiered
                else None
            )
            state = _TenantPolicy(tenant, heat, compaction, tiering)
            # Each tenant's contract is its *weighted share* of the
            # global budget — the same number on_round hands out — so
            # summary() and budgets_respected() report against the share
            # actually enforced, not the whole-machine budget.
            state.stats.budget_cycles = self._weight_share(
                tenant.spec.weight, total_weight
            )
            self.states[tenant.process.pid] = state

    # ------------------------------------------------------------------
    # The per-round arbitration step
    # ------------------------------------------------------------------

    def _weight_share(self, weight: int, total_weight: int) -> int:
        return max(1, self.budget_cycles * weight // total_weight)

    def on_round(self, scheduler) -> None:
        """Called by the scheduler after every round: run an epoch for
        each tenant that has executed ``epoch_cycles`` since its last,
        with its weight's share of the global budget; then relieve
        fast-tier pressure if the kernel is tiered."""
        total_weight = sum(t.spec.weight for t in scheduler.tenants) or 1
        for tenant in scheduler.tenants:
            state = self.states.get(tenant.process.pid)
            if state is None:
                continue
            cycles = tenant.interpreter.stats.cycles
            if cycles - state.last_epoch_at < self.epoch_cycles:
                continue
            state.last_epoch_at = cycles
            share = self._weight_share(tenant.spec.weight, total_weight)
            budget = EpochBudget(share)
            state.heat.end_epoch()
            with scheduler.kernel.tenant(tenant.process.pid):
                state.compaction.run_epoch(
                    budget, tenant.interpreter, state.stats
                )
                if state.tiering is not None:
                    state.tiering.run_epoch(
                        budget, tenant.interpreter, state.stats
                    )
            state.stats.epochs += 1
            state.stats.epoch_move_cycles.append(budget.spent)
            state.stats.move_cycles += budget.spent
            if budget.spent > share:
                state.stats.budget_overruns += 1
            self.epochs_run += 1
        self._relieve_pressure(scheduler)

    def _relieve_pressure(self, scheduler) -> None:
        """Pressure-driven demotion: above the occupancy threshold, evict
        one plan from the tenant whose fast-tier residents are coldest."""
        kernel = scheduler.kernel
        if not kernel.frames.tiered:
            return
        lo, hi = kernel.frames.tier_bounds("fast")
        capacity = hi - lo
        if not capacity:
            return
        used = capacity - kernel.frames.free_frames_in("fast")
        if used / capacity < self.demote_pressure:
            return
        coldest = None
        for state in self.states.values():
            if state.tiering is None or state.tenant.done:
                continue
            _, residents = state.tiering.classify()
            if not residents:
                continue
            total_heat = sum(score for _, score in residents)
            if coldest is None or total_heat < coldest[0]:
                coldest = (total_heat, state, residents)
        if coldest is None:
            return
        _, state, residents = coldest
        # Pressure relief spends from the tenant's own share, not the
        # whole-machine budget, and books the spend into the same
        # per-epoch ledger budgets_respected() audits.
        budget = EpochBudget(state.stats.budget_cycles)
        with kernel.tenant(state.tenant.process.pid):
            demoted = state.tiering.demote_coldest(
                residents, budget,
                state.tenant.interpreter, state.stats,
            )
        if demoted:
            self.pressure_demotions += 1
            state.stats.move_cycles += budget.spent
            state.stats.epoch_move_cycles.append(budget.spent)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def budgets_respected(self) -> bool:
        return all(
            state.stats.budget_overruns == 0 for state in self.states.values()
        )

    def summary(self) -> dict:
        return {
            "epochs_run": self.epochs_run,
            "pressure_demotions": self.pressure_demotions,
            "budgets_respected": self.budgets_respected(),
            "tenants": {
                str(pid): {
                    "epochs": state.stats.epochs,
                    "compaction_moves": state.stats.compaction_moves,
                    "promotions": state.stats.promotions,
                    "demotions": state.stats.demotions,
                    "move_cycles": state.stats.move_cycles,
                    "weight": state.tenant.spec.weight,
                }
                for pid, state in sorted(self.states.items())
            },
        }
