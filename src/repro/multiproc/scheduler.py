"""The multi-tenant scheduler: N CARAT capsules time-sliced on one machine.

One :class:`Scheduler` owns one :class:`~repro.kernel.kernel.Kernel` and
round-robins N tenants over it with a configurable quantum
(``RunConfig.quantum`` instructions, scaled by each tenant's weight).
Each tenant is a full per-PID capsule — its own region set, runtime,
heap, allocation table, guard-cache generation — so a move in tenant A
never invalidates a guard cache or TLB in tenant B.  Every quantum runs
under ``kernel.tenant(pid)``: kernel services and trace events land on
the owning tenant's stats block and trace lane.

Cross-tenant page sharing is opt-in (``share=True``): identical images
deduplicate through the :class:`~repro.multiproc.shares.ShareManager`,
and the scheduler services the resulting write faults as CoW breaks.
Interpreters only yield at safepoints (block boundaries), exactly like
:class:`~repro.machine.threads.ThreadGroup` rounds, so kernel activity
between quanta is always patch-safe.

Determinism: the schedule is a pure function of (specs, config) — no
wall clock, no randomness — so two runs produce bit-identical per-tenant
:class:`~repro.machine.executor.RunResult` fingerprints, and with
sharing and policy off each tenant's fingerprint equals its solo
``CaratSession`` run (asserted by ``tests/test_multiproc.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.carat.pipeline import CaratBinary, compile_carat
from repro.errors import InterpError, ProtectionFault
from repro.kernel.kernel import Kernel
from repro.kernel.loader import (
    code_segment_size,
    layout_globals,
    page_align,
)
from repro.machine.executor import (
    RunResult,
    _interpreter_class,
    _make_sanitizer,
)
from repro.machine.session import RunConfig
from repro.multiproc.shares import ShareManager
from repro.telemetry import Tracer


def percentile(values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile of raw samples (0 for an empty list).

    Rank is ``ceil(n * fraction)`` computed in exact integer arithmetic
    (via ``float.as_integer_ratio``), clamped to ``[1, n]`` — a float
    epsilon here goes off-by-one once ``n * fraction`` lands close
    enough to an integer boundary.
    """
    if not values:
        return 0
    ordered = sorted(values)
    num, den = float(fraction).as_integer_ratio()
    rank = -(-len(ordered) * num // den)
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a program plus its scheduling identity."""

    program: Union[str, CaratBinary]
    name: str = "tenant"
    entry: str = "main"
    args: Tuple = ()
    #: Fairness weight: quantum length and policy budgets scale with it.
    weight: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(f"weight must be a positive int, not {self.weight!r}")


@dataclass
class Tenant:
    """A loaded, running tenant (scheduler-internal)."""

    spec: TenantSpec
    process: object
    interpreter: object
    binary: CaratBinary
    done: bool = False
    exit_code: int = 0
    quanta: int = 0


@dataclass
class ScheduleResult:
    """Everything a multi-tenant run produced."""

    #: pid -> the tenant's RunResult (fingerprint()-able like any run).
    tenants: Dict[int, RunResult]
    #: Total simulated machine cycles (sum of every tenant's execution).
    machine_cycles: int
    #: Scheduling rounds completed.
    rounds: int
    #: pid -> raw pause samples (cycles per change request, from
    #: ``Kernel.pause_log``).
    pauses: Dict[int, List[int]] = field(default_factory=dict)
    #: CoW dedup accounting (``ShareManager.dedup_stats``), or None.
    dedup: Optional[dict] = None
    #: FairnessArbiter summary, or None.
    arbitration: Optional[dict] = None

    def fingerprints(self) -> Dict[int, str]:
        return {pid: result.fingerprint() for pid, result in self.tenants.items()}

    def p99_pause(self, pid: int) -> int:
        return percentile(self.pauses.get(pid, []), 0.99)

    def total_instructions(self) -> int:
        return sum(r.stats.instructions for r in self.tenants.values())

    def aggregate_throughput(self) -> float:
        """Instructions retired per simulated machine cycle, summed over
        every tenant — the benchmark's headline number."""
        if not self.machine_cycles:
            return 0.0
        return self.total_instructions() / self.machine_cycles

    def to_dict(self) -> dict:
        kernel = next(iter(self.tenants.values())).kernel if self.tenants else None
        return {
            "schema": "carat.multitenant.v1",
            "tenants": {
                str(pid): {
                    "name": result.process.name,
                    "exit_code": result.exit_code,
                    "instructions": result.stats.instructions,
                    "cycles": result.stats.cycles,
                    "fingerprint": result.fingerprint(),
                    "p99_pause_cycles": self.p99_pause(pid),
                    "pauses": len(self.pauses.get(pid, [])),
                    "kernel_stats": (
                        kernel.tenant_stats[pid].to_dict()
                        if kernel is not None and pid in kernel.tenant_stats
                        else {}
                    ),
                }
                for pid, result in sorted(self.tenants.items())
            },
            "machine_cycles": self.machine_cycles,
            "rounds": self.rounds,
            "total_instructions": self.total_instructions(),
            "aggregate_throughput": self.aggregate_throughput(),
            "dedup": self.dedup,
            "arbitration": self.arbitration,
        }


#: Headroom multiplier when the scheduler sizes physical memory itself:
#: destinations for moves, CoW breaks, and allocator slack.
_MEMORY_SLACK = 2


class Scheduler:
    """Round-robin multi-tenant executor; see module docstring."""

    def __init__(
        self,
        config: RunConfig,
        specs: Sequence[TenantSpec],
        *,
        kernel: Optional[Kernel] = None,
        share: bool = False,
        arbiter=None,
        memory_size: Optional[int] = None,
        fast_memory: Optional[int] = None,
        max_rounds: int = 1_000_000,
    ) -> None:
        if not specs:
            raise ValueError("a schedule needs at least one tenant")
        self.config = config
        self.specs = list(specs)
        self.share = share
        self.arbiter = arbiter
        self.max_rounds = max_rounds
        self._kernel = kernel
        self._memory_size = memory_size
        self._fast_memory = fast_memory
        self.kernel: Optional[Kernel] = None
        self.tenants: List[Tenant] = []
        self.tracer: Optional[Tracer] = None
        self.sanitizer = None
        self.rounds = 0
        #: Machine clock: cycles executed across every tenant so far.
        self.clock = 0
        self._active = None
        self._active_base = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _compile_specs(self) -> Dict[int, CaratBinary]:
        """One compile per distinct program text — tenants running the
        same source share one binary (and therefore, with ``share=True``,
        one signed image for the ShareManager to dedup)."""
        binaries: Dict[int, CaratBinary] = {}
        by_source: Dict[str, CaratBinary] = {}
        for index, spec in enumerate(self.specs):
            if isinstance(spec.program, CaratBinary):
                binaries[index] = spec.program
                continue
            cached = by_source.get(spec.program)
            if cached is None:
                cached = compile_carat(
                    spec.program, module_name=f"app{len(by_source)}"
                )
                by_source[spec.program] = cached
            binaries[index] = cached
        return binaries

    def _size_memory(self, binaries: Dict[int, CaratBinary]) -> int:
        config = self.config
        per_tenant = page_align(config.stack_size) + page_align(config.heap_size)
        image_of: Dict[int, int] = {}
        for binary in binaries.values():
            code = code_segment_size(binary.module)
            _, globals_size = layout_globals(binary.module, 0)
            image_of[id(binary)] = code + page_align(max(1, globals_size))
        if self.share:
            images = sum(image_of.values())
        else:
            images = sum(image_of[id(b)] for b in binaries.values())
        need = len(self.specs) * per_tenant + images
        return page_align(need * _MEMORY_SLACK + (8 << 20))

    def _build(self) -> None:
        config = self.config
        binaries = self._compile_specs()
        kernel = self._kernel
        if kernel is None:
            memory = self._memory_size or self._size_memory(binaries)
            kernel = Kernel(memory, fast_memory=self._fast_memory)
        self.kernel = kernel
        if config.tracing:
            self.tracer = Tracer(detail=config.trace_detail)
            kernel.attach_tracer(self.tracer)
            self.tracer.set_clock(self._machine_clock)
        if self.share and kernel.shares is None:
            kernel.attach_shares(ShareManager(kernel))
        if config.async_moves and kernel.move_queue is None:
            from repro.resilience import MoveQueue

            kernel.attach_move_queue(
                MoveQueue(
                    kernel,
                    batch_size=config.move_batch,
                    chunk_budget=config.chunk_budget,
                )
            )
        if config.agents and kernel.agents is None:
            from repro.agents import AgentMediator

            kernel.attach_agents(AgentMediator(kernel))
        self.sanitizer = _make_sanitizer(config.sanitize, None, kernel)

        interpreter_class = _interpreter_class(config.engine)
        for index, spec in enumerate(self.specs):
            binary = binaries[index]
            process = kernel.load_carat(
                binary,
                heap_size=config.heap_size,
                stack_size=config.stack_size,
                guard_mechanism=config.guard_mechanism,
                share=self.share,
            )
            process.name = spec.name
            if config.safety and process.runtime is not None:
                process.runtime.enable_safety()
            if config.agents:
                from repro.agents import DmaAgent

                for agent_index in range(config.agents):
                    agent = DmaAgent(
                        name=f"dma{process.pid}.{agent_index}",
                        burst=config.agent_burst,
                    )
                    agent.target(process)
                    kernel.agents.register(agent)
            interpreter = interpreter_class(process, kernel)
            if hasattr(interpreter, "set_trace_tuning"):
                interpreter.set_trace_tuning(
                    threshold=config.trace_threshold,
                    max_blocks=config.trace_max_blocks,
                )
            if self.sanitizer is not None:
                self.sanitizer.attach_interpreter(interpreter)
            if self.tracer is not None and process.runtime is not None:
                process.runtime.tracer = self.tracer
            interpreter.start(spec.entry, spec.args)
            self.tenants.append(Tenant(spec, process, interpreter, binary))
        if self.arbiter is not None:
            self.arbiter.wire(self)

    # ------------------------------------------------------------------
    # The clock (trace timestamps stay monotonic across tenant switches)
    # ------------------------------------------------------------------

    def _machine_clock(self) -> int:
        if self._active is not None:
            return self.clock + (self._active.stats.cycles - self._active_base)
        return self.clock

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def _run_quantum(self, tenant: Tenant) -> None:
        interpreter = tenant.interpreter
        process = tenant.process
        quantum = self.config.quantum * tenant.spec.weight
        start_cycles = interpreter.stats.cycles
        self._active = interpreter
        self._active_base = start_cycles
        kernel = self.kernel
        try:
            with kernel.tenant(process.pid):
                try:
                    status = interpreter.run_steps(quantum)
                except ProtectionFault as fault:
                    serviced = None
                    if kernel.shares is not None:
                        serviced = kernel.shares.service_write_fault(
                            process, interpreter, fault
                        )
                    if serviced is None:
                        raise  # a genuine violation, not a CoW break
                    status = "running"
        finally:
            self._active = None
            self.clock += interpreter.stats.cycles - start_cycles
        tenant.quanta += 1
        if status == "done":
            tenant.done = True
            tenant.exit_code = interpreter.exit_code
        elif interpreter.stats.instructions >= self.config.max_steps:
            raise InterpError(
                f"tenant {process.pid} ({process.name}) exhausted its "
                f"step budget after {interpreter.stats.instructions} "
                f"instructions"
            )

    def start(self) -> None:
        """Compile, load, and wire every tenant without running anything.

        Idempotent; ``run()`` calls it implicitly.  External drivers (the
        soak runner) call it explicitly so they can attach fault
        injectors, degradation managers, and memory probes to the built
        kernel before the first quantum executes."""
        if self.kernel is None:
            self._build()

    def step_round(self) -> bool:
        """Advance the schedule by exactly one round: one quantum per
        live tenant, then arbitration and one move-queue chunk.  Every
        tenant is at a safepoint when this returns, so callers may
        inspect or mutate kernel state between rounds.  Returns True
        while any tenant still has work."""
        self.start()
        kernel = self.kernel
        if all(tenant.done for tenant in self.tenants):
            return False
        if self.rounds >= self.max_rounds:
            raise InterpError("schedule exceeded its round budget")
        for tenant in self.tenants:
            if not tenant.done:
                self._run_quantum(tenant)
        self.rounds += 1
        if self.arbiter is not None:
            self.arbiter.on_round(self)
        if kernel.move_queue is not None:
            # Every tenant is at a safepoint between rounds; advance
            # the incremental move pipeline one bounded chunk.
            kernel.move_queue.step()
        if kernel.agents is not None:
            # Same safepoint guarantee covers the translation clients:
            # each registered agent streams one burst per round.
            kernel.agents.step()
        return any(not tenant.done for tenant in self.tenants)

    def finish(self) -> ScheduleResult:
        """Close the books: drain deferred moves, run the end-of-run
        sanitizer checkpoint, and assemble the result document."""
        kernel = self.kernel
        if kernel.move_queue is not None:
            kernel.move_queue.drain_all()
        if self.sanitizer is not None:
            self.sanitizer.finish(kernel)

        results: Dict[int, RunResult] = {}
        for tenant in self.tenants:
            interpreter = tenant.interpreter
            results[tenant.process.pid] = RunResult(
                tenant.exit_code,
                interpreter.output,
                interpreter.stats,
                tenant.process,
                kernel,
                interpreter,
                tenant.binary,
                sanitizer=self.sanitizer,
                tracer=self.tracer,
                config=self.config,
            )
        return ScheduleResult(
            tenants=results,
            machine_cycles=self.clock,
            rounds=self.rounds,
            pauses={pid: list(log) for pid, log in kernel.pause_log.items()},
            dedup=(
                kernel.shares.dedup_stats() if kernel.shares is not None else None
            ),
            arbitration=(
                self.arbiter.summary() if self.arbiter is not None else None
            ),
        )

    def run(self) -> ScheduleResult:
        """Run the whole schedule to completion (the one-shot path the
        ``smp`` subcommand and tests use): ``start`` + ``step_round``
        until every tenant exits + ``finish``."""
        self.start()
        while self.step_round():
            pass
        return self.finish()
