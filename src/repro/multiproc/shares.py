"""Cross-process page sharing with copy-on-write break-out.

Tenants loaded from the same signed binary have byte-identical read-only
images — globals (pristine initial values) and code.  The
:class:`ShareManager` keeps one physical copy per image, keyed on the
binary's toolchain signature: the first tenant materializes the frames,
later tenants just attach.  Every member maps the image read-only
(``PERM_READ | PERM_EXEC``), so divergence is impossible by
construction and attaching never re-hashes memory.

A member's *write* into the image raises a
:class:`~repro.errors.ProtectionFault`; the scheduler hands it to
:meth:`ShareManager.service_write_fault`, which breaks the page out via
the kernel's transactional page move (``reason="cow-break"`` — the one
reason admission control lets through a shared range).  The move patches
the tenant's escapes/registers/symbol map to the private copy, detaches
the membership, restores write permission on the copy, and retries the
faulting instruction — other members never notice.

Refcounting is per page: ``ShareGroup.members`` maps each member PID to
the set of page indices it still maps.  The canonical frames are held by
the group itself (so late attachers always find pristine pages) and
return to the kernel only when the last member detaches — lazy collapse.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import RollbackError
from repro.kernel.pagetable import PAGE_SIZE
from repro.runtime.regions import PERM_RWX


@dataclass
class ShareGroup:
    """One deduplicated image: a physical frame run plus its members."""

    key: str
    base: int
    pages: int
    #: member pid -> indices (0..pages) of the pages it still maps.
    members: Dict[int, Set[int]] = field(default_factory=dict)

    def refcount(self, index: int) -> int:
        return sum(1 for indices in self.members.values() if index in indices)


class ShareManager:
    """The kernel's CoW share table (attach via ``kernel.attach_shares``)."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.groups: Dict[str, ShareGroup] = {}
        #: CoW-break counters (reported by ``dedup_stats``).
        self.cow_breaks = 0
        self.pages_broken = 0
        self.break_cycles = 0

    # ------------------------------------------------------------------
    # Registration / attachment (the load path)
    # ------------------------------------------------------------------

    @staticmethod
    def image_key(binary) -> str:
        """Identity of a binary's read-only image.  The toolchain
        signature is an HMAC over the canonicalized module, so two loads
        of the same program share and different programs never do."""
        signature = getattr(binary, "signature", None)
        if signature is not None:
            return signature.digest
        return hashlib.sha256(binary.name.encode()).hexdigest()

    def lookup(self, key: str) -> Optional[ShareGroup]:
        """The live group for ``key``; a fully-collapsed group (every
        member CoW-broke away, frames already freed) reads as absent so
        the next tenant re-materializes the image."""
        group = self.groups.get(key)
        if group is not None and not group.members:
            del self.groups[key]
            return None
        return group

    def register(self, key: str, base: int, pages: int) -> ShareGroup:
        if key in self.groups and self.groups[key].members:
            raise ValueError(f"share group {key[:12]} already registered")
        group = ShareGroup(key=key, base=base, pages=pages)
        self.groups[key] = group
        return group

    def attach(self, group: ShareGroup, pid: int) -> None:
        group.members[pid] = set(range(group.pages))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _indices_in(self, group: ShareGroup, lo: int, hi: int) -> range:
        start = max(lo, group.base)
        end = min(hi, group.base + group.pages * PAGE_SIZE)
        if start >= end:
            return range(0)
        return range(
            (start - group.base) // PAGE_SIZE,
            (end - group.base + PAGE_SIZE - 1) // PAGE_SIZE,
        )

    def range_shared(self, pid: int, lo: int, hi: int) -> bool:
        """Does [lo, hi) cover any page ``pid`` still maps from a share
        group?  The pin predicate: admission control and the policy
        daemons refuse to move such ranges (except the CoW break)."""
        for group in self.groups.values():
            indices = group.members.get(pid)
            if not indices:
                continue
            for index in self._indices_in(group, lo, hi):
                if index in indices:
                    return True
        return False

    def shared_frame_owners(self) -> Dict[int, Set[int]]:
        """frame index -> member PIDs, for **every** page of every
        registered group (zero-member pages included: their frames are
        the group's canonical hold).  The sanitizer's frame-ownership
        rule consults this to allow exactly the registered sharing."""
        owners: Dict[int, Set[int]] = {}
        for group in self.groups.values():
            for index in range(group.pages):
                frame = group.base // PAGE_SIZE + index
                owners[frame] = {
                    pid
                    for pid, indices in group.members.items()
                    if index in indices
                }
        return owners

    def dedup_stats(self) -> dict:
        """Savings accounting for the benchmark: each page mapped by M
        members costs one frame instead of M."""
        groups = []
        saved_pages = 0
        shared_pages = 0
        for group in self.groups.values():
            refs = [group.refcount(i) for i in range(group.pages)]
            group_saved = sum(max(0, r - 1) for r in refs)
            saved_pages += group_saved
            shared_pages += group.pages
            groups.append({
                "key": group.key[:12],
                "base": group.base,
                "pages": group.pages,
                "members": len(group.members),
                "saved_pages": group_saved,
            })
        return {
            "groups": groups,
            "shared_pages": shared_pages,
            "saved_pages": saved_pages,
            "saved_bytes": saved_pages * PAGE_SIZE,
            "cow_breaks": self.cow_breaks,
            "pages_broken": self.pages_broken,
            "break_cycles": self.break_cycles,
        }

    # ------------------------------------------------------------------
    # Transactional detach (called from the move protocol)
    # ------------------------------------------------------------------

    def detach_range(
        self, pid: int, lo: int, page_count: int, holder: List
    ) -> None:
        """Detach ``pid``'s membership of the shared pages in
        ``[lo, lo + page_count pages)`` — the STEP_RELEASE_FRAMES half of
        a CoW break.  Canonical frames stay allocated (the group holds
        them for late attachers) unless the whole group just lost its
        last member, in which case the entire run returns to the kernel.
        Undo records land in ``holder`` for :meth:`reattach_range`."""
        hi = lo + page_count * PAGE_SIZE
        for key, group in list(self.groups.items()):
            indices = group.members.get(pid)
            if not indices:
                continue
            detached = [
                index
                for index in self._indices_in(group, lo, hi)
                if index in indices
            ]
            if not detached:
                continue
            indices.difference_update(detached)
            if not indices:
                del group.members[pid]
            collapsed = not group.members
            if collapsed:
                self.kernel.frames.free_address(group.base, group.pages)
                del self.groups[key]
            holder.append(
                {"group": group, "pid": pid, "indices": detached,
                 "collapsed": collapsed}
            )

    def reattach_range(
        self, pid: int, lo: int, page_count: int, holder: List
    ) -> None:
        """Rollback of :meth:`detach_range`: restore memberships and, for
        a collapsed group, re-claim its freed frames and re-register it."""
        while holder:
            record = holder.pop()
            group = record["group"]
            if record["collapsed"]:
                if not self.kernel.frames.alloc_at(
                    group.base // PAGE_SIZE, group.pages
                ):
                    raise RollbackError(
                        f"shared frames at {group.base:#x} were "
                        f"reallocated mid-rollback"
                    )
                self.groups[group.key] = group
            group.members.setdefault(record["pid"], set()).update(
                record["indices"]
            )

    # ------------------------------------------------------------------
    # The CoW break (fault service)
    # ------------------------------------------------------------------

    def service_write_fault(self, process, interpreter, fault) -> Optional[int]:
        """Service a guard fault as a CoW break when — and only when —
        it is a *write* into a page ``process`` maps from a share group.
        Returns the cycles charged, or ``None`` for a genuine violation
        (the caller re-raises).

        The break is one transactional page move with
        ``reason="cow-break"``: the world stops, escapes and registers
        are patched to the private copy, the membership detaches
        (journaled — a fault mid-move rolls it all back), write
        permission is restored on the copy, and the faulting store
        retries against it."""
        if fault.access != "write":
            return None
        page = fault.address & ~(PAGE_SIZE - 1)
        if not self.range_shared(process.pid, page, page + PAGE_SIZE):
            return None
        kernel = self.kernel
        runtime = process.runtime
        plan = runtime.patcher.plan_move(page, page + PAGE_SIZE)
        pages = plan.length // PAGE_SIZE
        destination = kernel.frames.alloc_address(pages)
        snapshots = interpreter.register_snapshots()
        _, _, cycles = kernel.request_page_move(
            process,
            plan.lo,
            pages,
            register_snapshots=snapshots,
            destination=destination,
            reason="cow-break",
        )
        # The private copy belongs to this tenant alone: writable again.
        process.regions.set_range_perms(
            destination, destination + plan.length, PERM_RWX
        )
        process.regions.coalesce()
        interpreter.apply_snapshots(snapshots)
        interpreter.retry_current_instruction()
        # The faulting tenant pays for its own break.
        interpreter.stats.cycles += cycles
        self.cow_breaks += 1
        self.pages_broken += pages
        self.break_cycles += cycles
        if kernel.tracer is not None:
            kernel.tracer.instant(
                "cow.break", "kernel",
                {"page": plan.lo, "pages": pages, "cycles": cycles},
                pid=process.pid,
            )
        return cycles
