"""Multi-tenant execution: one simulated machine, many CARAT capsules.

The paper's kernel hosts many processes; up to this package the
reproduction ran one capsule per kernel.  This subsystem supplies the
missing pieces:

* :mod:`repro.multiproc.shares` — cross-process page sharing: identical
  read-only images (globals + code) deduplicate into one physical copy;
  a write CoW-breaks the page out through the transactional move path.
* :mod:`repro.multiproc.scheduler` — a round-robin :class:`Scheduler`
  time-slicing N :class:`~repro.machine.session.RunConfig`-configured
  tenants over one kernel, with per-tenant stats, trace lanes, and
  pause telemetry.
* :mod:`repro.multiproc.arbiter` — the :class:`FairnessArbiter`
  arbitrating heat/compaction/tiering globally under weighted per-tenant
  cycle budgets, with pressure-driven demotion of the coldest tenant.
"""

from repro.multiproc.arbiter import FairnessArbiter
from repro.multiproc.scheduler import ScheduleResult, Scheduler, TenantSpec
from repro.multiproc.shares import ShareGroup, ShareManager

__all__ = [
    "FairnessArbiter",
    "ScheduleResult",
    "Scheduler",
    "ShareGroup",
    "ShareManager",
    "TenantSpec",
]
