"""The CARAT compiler: the paper's primary compile-time contribution.

* :mod:`repro.carat.intrinsics` — the compiler/runtime ABI
* :mod:`repro.carat.guards` — guard injection (protection)
* :mod:`repro.carat.guard_opt` — Opt1 hoisting, Opt2 SCEV merging,
  Opt3 AC/DC redundancy elimination
* :mod:`repro.carat.tracking` — allocation & escape tracking (mapping)
* :mod:`repro.carat.restrictions` — Section 2.2 source restrictions
* :mod:`repro.carat.signing` — toolchain signatures
* :mod:`repro.carat.pipeline` — :func:`compile_carat` / :func:`compile_baseline`
"""

from repro.carat.guard_opt import GuardOptStats, optimize_guards
from repro.carat.guards import GuardTable, inject_guards, max_stack_footprint
from repro.carat.intrinsics import (
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
    TRACK_ALLOC,
    TRACK_ESCAPE,
    TRACK_FREE,
    is_carat_call,
    is_guard_call,
    is_tracking_call,
)
from repro.carat.pipeline import (
    CaratBinary,
    CompileOptions,
    compile_baseline,
    compile_carat,
)
from repro.carat.restrictions import check_restrictions, find_violations
from repro.carat.signing import Signature, sign_module, verify_signature
from repro.carat.tracking import TrackingStats, inject_tracking

__all__ = [
    "GuardOptStats",
    "optimize_guards",
    "GuardTable",
    "inject_guards",
    "max_stack_footprint",
    "GUARD_CALL",
    "GUARD_LOAD",
    "GUARD_RANGE",
    "GUARD_STORE",
    "TRACK_ALLOC",
    "TRACK_ESCAPE",
    "TRACK_FREE",
    "is_carat_call",
    "is_guard_call",
    "is_tracking_call",
    "CaratBinary",
    "CompileOptions",
    "compile_baseline",
    "compile_carat",
    "check_restrictions",
    "find_violations",
    "Signature",
    "sign_module",
    "verify_signature",
    "TrackingStats",
    "inject_tracking",
]
