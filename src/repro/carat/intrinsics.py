"""CARAT runtime intrinsics: the compiler <-> runtime ABI.

The injected instrumentation calls these well-known functions.  They are
declared vararg so any pointer type can be passed without cast clutter;
the interpreter recognizes them by name and dispatches straight into the
:class:`~repro.runtime.runtime.CaratRuntime`, charging costs from the
machine cost model instead of executing a body.

Guard intrinsics (protection, Section 4.1.1):

* ``carat.guard.load(ptr, size)``  — validate a data read
* ``carat.guard.store(ptr, size)`` — validate a data write
* ``carat.guard.call(frame_size)`` — validate the callee's stack frame
* ``carat.guard.range(ptr, length)`` — merged guard over a byte range;
  a ``length`` of zero always passes (emitted by Opt-2 for loops whose
  trip count may be zero)

Tracking intrinsics (mapping, Section 4.1.2):

* ``carat.alloc(ptr, size)`` — a new allocation exists
* ``carat.free(ptr)``        — an allocation is gone
* ``carat.escape(location)`` — a pointer was just stored at ``location``
"""

from __future__ import annotations

from typing import Dict

from repro.ir.module import Function, Module
from repro.ir.types import FunctionType, VOID

GUARD_LOAD = "carat.guard.load"
GUARD_STORE = "carat.guard.store"
GUARD_CALL = "carat.guard.call"
GUARD_RANGE = "carat.guard.range"
TRACK_ALLOC = "carat.alloc"
TRACK_FREE = "carat.free"
TRACK_ESCAPE = "carat.escape"

GUARD_INTRINSICS = frozenset({GUARD_LOAD, GUARD_STORE, GUARD_CALL, GUARD_RANGE})
TRACKING_INTRINSICS = frozenset({TRACK_ALLOC, TRACK_FREE, TRACK_ESCAPE})
ALL_INTRINSICS = GUARD_INTRINSICS | TRACKING_INTRINSICS

#: Default worst-case callee frame footprint, in bytes, charged by call
#: guards when the callee's frame cannot be computed (external functions).
DEFAULT_FRAME_SIZE = 256

#: Fixed per-call overhead: return address plus saved registers.
CALL_OVERHEAD_BYTES = 32


def declare_intrinsic(module: Module, name: str) -> Function:
    """Get-or-declare one CARAT intrinsic on ``module``."""
    if name not in ALL_INTRINSICS:
        raise ValueError(f"not a CARAT intrinsic: {name!r}")
    return module.get_or_declare(name, FunctionType(VOID, [], vararg=True))


def declare_all(module: Module) -> Dict[str, Function]:
    return {name: declare_intrinsic(module, name) for name in sorted(ALL_INTRINSICS)}


def is_guard_call(inst) -> bool:
    from repro.ir.instructions import CallInst

    return (
        isinstance(inst, CallInst)
        and inst.callee_name is not None
        and inst.callee_name in GUARD_INTRINSICS
    )


def is_tracking_call(inst) -> bool:
    from repro.ir.instructions import CallInst

    return (
        isinstance(inst, CallInst)
        and inst.callee_name is not None
        and inst.callee_name in TRACKING_INTRINSICS
    )


def is_carat_call(inst) -> bool:
    return is_guard_call(inst) or is_tracking_call(inst)
