"""The CARAT compilation pipeline: Mini-C (or raw IR) in, signed binary out.

Mirrors Figure 1(b)'s compile-time flow:

1. frontend -> IR, with source restrictions enforced (sema + IR re-check);
2. general optimizations (the clang -O2 stand-in);
3. **transform**: allocation/escape tracking injection;
4. **guard injection** followed by the CARAT-specific guard optimizations;
5. link against the runtime (here: intrinsic declarations — the runtime
   itself lives in :mod:`repro.runtime` and is bound at load time);
6. sign the binary with the toolchain key.

Use :func:`compile_carat` for the full treatment and
:func:`compile_baseline` for the uninstrumented comparison binary used by
every overhead experiment.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.carat.guard_opt import GuardOptStats, optimize_guards
from repro.carat.guards import GuardTable, inject_guards
from repro.carat.restrictions import check_restrictions
from repro.carat.signing import DEFAULT_TOOLCHAIN, Signature, sign_module
from repro.carat.tracking import TrackingStats, inject_tracking
from repro.frontend.lower import compile_source
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.transform.pass_manager import (
    module_instruction_count,
    optimize_module,
)


@dataclass
class CompileOptions:
    """Knobs for the pipeline; the defaults give the full CARAT treatment.

    The experiment harness flips these to build the configurations the
    paper compares: baseline (guards=False, tracking=False), guards with
    general opts only (carat_guard_opts=False, Figure 3a), guards with
    CARAT opts (Figure 3b), tracking only (Figures 6/7), and so on.
    """

    optimize: bool = True
    guards: bool = True
    carat_guard_opts: bool = True
    tracking: bool = True
    sign: bool = True
    verify: bool = True
    toolchain: str = DEFAULT_TOOLCHAIN


@dataclass
class CaratBinary:
    """A compiled, optionally signed, CARAT program image."""

    module: Module
    signature: Optional[Signature]
    guard_table: GuardTable
    guard_stats: GuardOptStats
    tracking_stats: TrackingStats
    options: CompileOptions
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def is_signed(self) -> bool:
        return self.signature is not None


@contextmanager
def _phase(tracer, name: str, module: Module):
    """A compiler-phase span carrying the IR instruction-count delta
    (yields a throwaway dict when no tracer is attached)."""
    if tracer is None:
        yield {}
        return
    size_before = module_instruction_count(module)
    with tracer.span(f"phase.{name}", "compiler") as end_args:
        try:
            yield end_args
        finally:
            end_args["ir_delta"] = (
                module_instruction_count(module) - size_before
            )


def compile_carat(
    program: Union[str, Module],
    options: Optional[CompileOptions] = None,
    module_name: str = "program",
    tracer=None,
) -> CaratBinary:
    """Compile Mini-C source (or an already-built module) under CARAT.

    With a :class:`~repro.telemetry.Tracer`, every phase (and every pass
    inside the optimization phase) becomes a ``compiler`` span with its
    IR instruction-count delta.
    """
    options = options or CompileOptions()
    if isinstance(program, str):
        if tracer is not None:
            with tracer.span("phase.frontend", "compiler") as end_args:
                module = compile_source(program, module_name)
                end_args["ir_size"] = module_instruction_count(module)
        else:
            module = compile_source(program, module_name)
    else:
        module = program
    with _phase(tracer, "restrictions", module):
        check_restrictions(module)

    if options.optimize:
        with _phase(tracer, "optimize", module):
            optimize_module(module, verify=options.verify, tracer=tracer)

    # Tracking is injected before guards so tracking callbacks themselves
    # are never guarded (they are trusted runtime entry points).
    tracking_stats = TrackingStats()
    if options.tracking:
        with _phase(tracer, "inject-tracking", module) as end_args:
            tracking_stats = inject_tracking(module)
            end_args["callbacks"] = tracking_stats.total

    guard_table = GuardTable()
    guard_stats = GuardOptStats()
    if options.guards:
        with _phase(tracer, "inject-guards", module) as end_args:
            inject_guards(module, guard_table)
            end_args["guards"] = guard_table.total
        if options.carat_guard_opts:
            with _phase(tracer, "optimize-guards", module) as end_args:
                guard_stats = optimize_guards(module, guard_table)
                end_args["remaining"] = guard_stats.remaining
        else:
            guard_stats = GuardOptStats(
                total=guard_table.total, untouched=guard_table.total
            )

    if options.verify:
        with _phase(tracer, "verify", module):
            verify_module(module)

    metadata: Dict[str, object] = {
        "module": module.name,
        "guards_total": guard_table.total,
        "guards_remaining": guard_stats.remaining if options.guards else 0,
        "tracking_callbacks": tracking_stats.total,
        "toolchain": options.toolchain,
    }
    signature = (
        sign_module(module, metadata, options.toolchain) if options.sign else None
    )
    return CaratBinary(
        module=module,
        signature=signature,
        guard_table=guard_table,
        guard_stats=guard_stats,
        tracking_stats=tracking_stats,
        options=options,
        metadata=metadata,
    )


def compile_baseline(
    program: Union[str, Module], module_name: str = "program", tracer=None
) -> CaratBinary:
    """The uninstrumented baseline: general optimizations only."""
    return compile_carat(
        program,
        CompileOptions(guards=False, tracking=False, sign=True),
        module_name,
        tracer=tracer,
    )
