"""Allocation and escape tracking injection (Section 4.1.2).

* After every call to an allocation function (``malloc``/``calloc``/
  ``realloc``) a ``carat.alloc(ptr, size)`` callback reports the new block.
* Before every call to ``free`` a ``carat.free(ptr)`` callback retires it.
* After every remaining ``alloca`` (arrays, structs, escaping scalars —
  mem2reg has already promoted the rest) a ``carat.alloc`` reports the
  stack block; static allocations (globals) are recorded by the loader at
  program load time, exactly as the paper specifies.
* After every store whose stored value is a pointer, a
  ``carat.escape(location)`` callback reports that a copy of some
  allocation's address now lives at ``location``.

The runtime batches escape updates (Allocation-to-Escape Map) and applies
allocation updates eagerly (Allocation Table), matching Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.carat.intrinsics import (
    TRACK_ALLOC,
    TRACK_ESCAPE,
    TRACK_FREE,
    declare_intrinsic,
    is_carat_call,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import AllocaInst, CallInst, StoreInst
from repro.ir.module import Module
from repro.ir.types import I64, stride_of
from repro.ir.values import ConstantInt

ALLOCATION_CALLEES = {"malloc", "calloc", "realloc"}


@dataclass
class TrackingStats:
    """Counts of each kind of injected tracking callback."""

    alloc_callbacks: int = 0
    free_callbacks: int = 0
    escape_callbacks: int = 0
    stack_callbacks: int = 0

    @property
    def total(self) -> int:
        return (
            self.alloc_callbacks
            + self.free_callbacks
            + self.escape_callbacks
            + self.stack_callbacks
        )


def inject_tracking(module: Module) -> TrackingStats:
    """Instrument ``module`` with allocation/escape callbacks."""
    stats = TrackingStats()
    track_alloc = declare_intrinsic(module, TRACK_ALLOC)
    track_free = declare_intrinsic(module, TRACK_FREE)
    track_escape = declare_intrinsic(module, TRACK_ESCAPE)
    builder = IRBuilder()

    for fn in module.defined_functions():
        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, CallInst) and not is_carat_call(inst):
                    name = inst.callee_name
                    if name in ALLOCATION_CALLEES:
                        _instrument_allocation(builder, track_alloc, inst)
                        stats.alloc_callbacks += 1
                        if name == "realloc":
                            # The old block is gone once realloc returns.
                            builder.position_before(inst)
                            builder.call(track_free, [inst.args[0]])
                            stats.free_callbacks += 1
                    elif name == "free":
                        builder.position_before(inst)
                        builder.call(track_free, [inst.args[0]])
                        stats.free_callbacks += 1
                elif isinstance(inst, AllocaInst):
                    _instrument_alloca(builder, track_alloc, inst)
                    stats.stack_callbacks += 1
                elif isinstance(inst, StoreInst) and inst.stores_pointer():
                    block.insert_after(
                        inst, _escape_call(track_escape, inst)
                    )
                    stats.escape_callbacks += 1
    return stats


def _instrument_allocation(builder: IRBuilder, track_alloc, call: CallInst) -> None:
    name = call.callee_name
    block = call.parent
    assert block is not None
    index = block.index_of(call) + 1
    builder.position_at_end(block)
    builder._anchor = (
        block.instructions[index] if index < len(block.instructions) else None
    )
    if name == "calloc":
        size = builder.mul(call.args[0], call.args[1])
    elif name == "realloc":
        size = call.args[1]
    else:
        size = call.args[0]
    builder.call(track_alloc, [call, size])


def _instrument_alloca(builder: IRBuilder, track_alloc, alloca: AllocaInst) -> None:
    block = alloca.parent
    assert block is not None
    index = block.index_of(alloca) + 1
    builder.position_at_end(block)
    builder._anchor = (
        block.instructions[index] if index < len(block.instructions) else None
    )
    static_size = alloca.allocation_size()
    if static_size is not None:
        size = ConstantInt(I64, static_size)
    else:
        size = builder.mul(
            alloca.count, ConstantInt(I64, stride_of(alloca.allocated_type))
        )
    builder.call(track_alloc, [alloca, size])


def _escape_call(track_escape, store: StoreInst) -> CallInst:
    return CallInst(track_escape, [store.pointer])
