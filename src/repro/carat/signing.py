"""Binary signing (Section 4.1, third task).

The CARAT compiler signs its output so the kernel can verify *which
toolchain* produced a binary before trusting the guards inside it — the
same scheme as .NET CIL signing.  We sign the canonical textual form of
the module plus its metadata with HMAC-SHA256 under a toolchain key.

The kernel holds a set of trusted toolchain identities; at load time it
recomputes the MAC and refuses binaries whose signature fails or whose
toolchain it does not trust (see :meth:`repro.kernel.kernel.Kernel.load`).
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SigningError
from repro.ir.module import Module
from repro.ir.printer import print_module

#: The default toolchain identity of this compiler build.
DEFAULT_TOOLCHAIN = "repro-carat-llvm-9.0"

#: Built-in toolchain keys.  A production kernel would use public-key
#: signatures; HMAC keeps the trust handshake intact without a crypto
#: dependency.
_TOOLCHAIN_KEYS: Dict[str, bytes] = {
    DEFAULT_TOOLCHAIN: b"carat-toolchain-key-v1",
}


def register_toolchain(name: str, key: bytes) -> None:
    """Register a toolchain signing key (e.g. for tests)."""
    _TOOLCHAIN_KEYS[name] = key


def toolchain_key(name: str) -> bytes:
    try:
        return _TOOLCHAIN_KEYS[name]
    except KeyError:
        raise SigningError(f"unknown toolchain {name!r}")


@dataclass
class Signature:
    """A toolchain identity plus the HMAC digest it produced."""

    toolchain: str
    digest: str  # hex HMAC-SHA256

    def to_json(self) -> str:
        return json.dumps({"toolchain": self.toolchain, "digest": self.digest})

    @classmethod
    def from_json(cls, text: str) -> "Signature":
        data = json.loads(text)
        return cls(toolchain=data["toolchain"], digest=data["digest"])


def _canonical_bytes(module: Module, metadata: Dict[str, object]) -> bytes:
    body = print_module(module)
    meta = json.dumps(metadata, sort_keys=True, default=str)
    return body.encode("utf-8") + b"\x00" + meta.encode("utf-8")


def sign_module(
    module: Module,
    metadata: Optional[Dict[str, object]] = None,
    toolchain: str = DEFAULT_TOOLCHAIN,
) -> Signature:
    key = toolchain_key(toolchain)
    digest = hmac.new(
        key, _canonical_bytes(module, metadata or {}), hashlib.sha256
    ).hexdigest()
    return Signature(toolchain=toolchain, digest=digest)


def verify_signature(
    module: Module,
    signature: Signature,
    metadata: Optional[Dict[str, object]] = None,
    trusted_toolchains: Optional[set] = None,
) -> bool:
    """True when the signature is authentic *and* the toolchain is trusted.

    Raises :class:`SigningError` for unknown toolchains (no key to check
    against); returns False for a wrong digest or an untrusted toolchain.
    """
    if trusted_toolchains is not None and signature.toolchain not in trusted_toolchains:
        return False
    key = toolchain_key(signature.toolchain)
    expected = hmac.new(
        key, _canonical_bytes(module, metadata or {}), hashlib.sha256
    ).hexdigest()
    return hmac.compare_digest(expected, signature.digest)
