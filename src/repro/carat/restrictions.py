"""IR-level enforcement of CARAT's source restrictions (Section 2.2).

Semantic analysis already rejects violations that Mini-C can express; this
pass re-checks the *IR*, which matters for two reasons: IR can be built
directly through the builder API (bypassing the frontend), and the
restrictions are part of the compiler's trusted-computing-base contract —
the kernel trusts that signed binaries passed these checks.

Checked here:

1. no casts between function pointers and data pointers, in either
   direction (``bitcast``/``ptrtoint``/``inttoptr`` touching a function
   type), and no pointer arithmetic on functions (a GEP whose base is a
   function);
2. all control flow is local: every call targets a declared function of
   this module (no calls through loaded pointers), so the kernel may move
   the code image freely;
3. no unreachable-looking stores through integer-literal pointers (the
   detectable-UB rule: ``inttoptr`` of a constant is rejected).
"""

from __future__ import annotations

from typing import List

from repro.errors import RestrictionError
from repro.ir.instructions import CallInst, CastInst, GEPInst, Instruction
from repro.ir.module import Function, Module
from repro.ir.types import FunctionType, PointerType
from repro.ir.values import ConstantInt


def check_restrictions(module: Module) -> None:
    """Raise :class:`RestrictionError` on the first violation found."""
    violations = find_violations(module)
    if violations:
        raise RestrictionError(violations[0])


def find_violations(module: Module) -> List[str]:
    violations: List[str] = []
    for fn in module.defined_functions():
        for inst in fn.instructions():
            violations.extend(_check_instruction(fn, inst))
    return violations


def _is_function_pointer_type(ty) -> bool:
    return isinstance(ty, PointerType) and isinstance(ty.pointee, FunctionType)


def _check_instruction(fn: Function, inst: Instruction) -> List[str]:
    where = f"in @{fn.name}"
    out: List[str] = []
    if isinstance(inst, CastInst):
        src_ty = inst.value.type
        if inst.opcode == "bitcast":
            if _is_function_pointer_type(src_ty) != _is_function_pointer_type(
                inst.type
            ):
                out.append(
                    f"{where}: cast between function pointer and data pointer"
                )
        elif inst.opcode == "ptrtoint":
            if _is_function_pointer_type(src_ty) or isinstance(
                inst.value, Function
            ):
                out.append(f"{where}: function address converted to integer")
        elif inst.opcode == "inttoptr":
            if _is_function_pointer_type(inst.type):
                out.append(f"{where}: integer converted to function pointer")
            if isinstance(inst.value, ConstantInt):
                out.append(
                    f"{where}: inttoptr of a constant "
                    f"({inst.value.value:#x}) — fabricated pointer (UB)"
                )
    elif isinstance(inst, GEPInst):
        if isinstance(inst.pointer, Function) or _is_function_pointer_type(
            inst.pointer.type
        ) and isinstance(inst.pointer.type.pointee, FunctionType):
            out.append(f"{where}: pointer arithmetic on a function pointer")
    elif isinstance(inst, CallInst):
        if not isinstance(inst.callee, Function):
            out.append(
                f"{where}: indirect call through a value — control flow "
                f"must be provably local"
            )
    return out
