"""CARAT-specific guard optimizations (Section 4.1.1).

Three optimizations, applied in the paper's order, each attributing a fate
to the guards it touches (Table 1's columns):

* **Optimization 1 — hoisting**: a guard whose address is loop-invariant
  and which executes on every iteration (its block dominates every latch)
  moves to the loop preheader, recursively to the outermost loop possible.
  Call guards hoist when the loop contains no stack allocation.
* **Optimization 2 — merging** (scalar evolution): a guard whose address
  sweeps an affine range ``{start, +, step}`` over a loop with a computable
  trip count is replaced by a single ``carat.guard.range(low, len)`` in
  the preheader covering every byte the loop will touch.  For top-tested
  loops whose trip count may be zero the emitted length clamps to zero
  (a zero-length range guard always passes).
* **Optimization 3 — redundancy elimination** (AC/DC): an available-
  expressions dataflow over guarded pointer definitions; a guard whose
  address is already guarded on every path to it is deleted.  Only
  dynamic stack growth kills availability (SSA values are never
  redefined, and region changes force a world-stop through the runtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import AvailableValues
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.scev import SCEVExpander, ScalarEvolution
from repro.carat.guards import GuardTable
from repro.carat.intrinsics import (
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
    declare_intrinsic,
    is_carat_call,
    is_guard_call,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import AllocaInst, CallInst, Instruction
from repro.ir.module import Function, Module
from repro.ir.types import I8, I64, ptr
from repro.ir.values import ConstantInt, Value


@dataclass
class GuardOptStats:
    """Per-module outcome of the guard optimizer (feeds Table 1)."""

    total: int = 0
    untouched: int = 0
    hoisted: int = 0
    merged: int = 0
    eliminated: int = 0

    @property
    def remaining(self) -> int:
        return self.untouched + self.hoisted + self.merged

    def fraction(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    def as_table1_row(self) -> Dict[str, float]:
        """The fractions Table 1 reports for one benchmark."""
        return {
            "opt_guards": self.fraction(self.remaining),
            "untouched": self.fraction(self.untouched),
            "opt1_hoist": self.fraction(self.hoisted),
            "opt2_scev": self.fraction(self.merged),
            "opt3_redundancy": self.fraction(self.eliminated),
        }


def optimize_guards(module: Module, table: GuardTable) -> GuardOptStats:
    """Run Opt1 -> Opt2 -> Opt3 over every function.  Returns statistics."""
    for fn in module.defined_functions():
        _hoist_guards(fn, table)
        _merge_guards(fn, table)
        _eliminate_redundant_guards(fn, table)
    stats = GuardOptStats(total=table.total)
    stats.untouched = table.count_fate("untouched")
    stats.hoisted = table.count_fate("hoisted")
    stats.merged = table.count_fate("merged")
    stats.eliminated = table.count_fate("eliminated")
    return stats


# ---------------------------------------------------------------------------
# Optimization 1: hoisting
# ---------------------------------------------------------------------------


def _guard_address(guard: CallInst) -> Optional[Value]:
    if guard.callee_name in (GUARD_LOAD, GUARD_STORE):
        return guard.args[0]
    return None


def _loop_has_alloca(loop: Loop) -> bool:
    return any(isinstance(inst, AllocaInst) for inst in loop.instructions())


def _hoist_guards(fn: Function, table: GuardTable) -> int:
    """Hoist loop-invariant guards to preheaders, innermost-out, repeating
    so a guard can climb to the outermost loop where it is still
    invariant (the recursion the paper describes)."""
    hoisted = 0
    for _ in range(20):  # bounded; each round climbs one nesting level
        domtree = DominatorTree.compute(fn)
        loop_info = LoopInfo.compute(fn, domtree)
        if not loop_info.loops:
            break
        moved = False
        for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
            candidates: List[CallInst] = []
            for block in list(loop.blocks):
                for inst in block.instructions:
                    if not is_guard_call(inst):
                        continue
                    guard = inst  # type: CallInst
                    if not all(
                        domtree.dominates(block, latch) for latch in loop.latches
                    ):
                        continue
                    address = _guard_address(guard)
                    if address is not None:
                        if _is_invariant(address, loop):
                            candidates.append(guard)
                    elif guard.callee_name == GUARD_CALL:
                        if not _loop_has_alloca(loop):
                            candidates.append(guard)
                    elif guard.callee_name == GUARD_RANGE:
                        if all(_is_invariant(a, loop) for a in guard.args):
                            candidates.append(guard)
            if not candidates:
                continue
            preheader = loop_info.ensure_preheader(loop)
            terminator = preheader.terminator
            assert terminator is not None
            for guard in candidates:
                block = guard.parent
                assert block is not None
                block.remove(guard)
                preheader.insert_before(terminator, guard)
                record = table.record_for(guard)
                if record is not None and record.fate == "untouched":
                    record.fate = "hoisted"
                hoisted += 1
                moved = True
        if not moved:
            break
    return hoisted


def _is_invariant(value: Value, loop: Loop) -> bool:
    if isinstance(value, Instruction):
        return value.parent is not None and value.parent not in loop.blocks
    return True


# ---------------------------------------------------------------------------
# Optimization 2: merging via scalar evolution
# ---------------------------------------------------------------------------


def _merge_guards(fn: Function, table: GuardTable) -> int:
    merged = 0
    domtree = DominatorTree.compute(fn)
    loop_info = LoopInfo.compute(fn, domtree)
    if not loop_info.loops:
        return 0
    scev = ScalarEvolution(fn, loop_info)
    module = fn.parent
    assert module is not None
    guard_range = declare_intrinsic(module, GUARD_RANGE)

    # Collect (guard, loop, range) first: creating preheaders mutates loops.
    plans: List[Tuple[CallInst, Loop, tuple, int]] = []
    for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
        for block in list(loop.blocks):
            for inst in list(block.instructions):
                if not is_guard_call(inst):
                    continue
                guard = inst
                address = _guard_address(guard)
                if address is None:
                    continue
                if not all(
                    domtree.dominates(block, latch) for latch in loop.latches
                ):
                    continue
                affine = scev.affine_range(address, loop)
                if affine is None:
                    continue
                from repro.analysis.scev import scev_is_expandable

                if not (
                    scev_is_expandable(affine[0]) and scev_is_expandable(affine[2])
                ):
                    # Start or trip count involves an outer-loop recurrence;
                    # it cannot be materialized at this preheader.
                    continue
                size_arg = guard.args[1]
                if not isinstance(size_arg, ConstantInt):
                    continue
                plans.append((guard, loop, affine, size_arg.value))

    planned_guards = {id(g) for g, _, _, _ in plans}
    for guard, loop, (start, step, n_scev), access_size in plans:
        if guard.parent is None:
            continue  # already handled
        preheader = loop_info.ensure_preheader(loop)
        terminator = preheader.terminator
        assert terminator is not None
        builder = IRBuilder()
        builder.position_before(terminator)
        expander = SCEVExpander(builder)
        start_value = expander.expand(start)
        n_value = expander.expand(n_scev)
        one = ConstantInt(I64, 1)
        nm1 = builder.sub(n_value, one)
        span = builder.mul(nm1, ConstantInt(I64, abs(step)))
        if step >= 0:
            low = start_value
        else:
            low = builder.sub(start_value, span)
        raw_len = builder.add(span, ConstantInt(I64, access_size))
        has_iters = builder.icmp("sge", n_value, one)
        length = builder.select(has_iters, raw_len, ConstantInt(I64, 0))
        low_ptr = builder.inttoptr(low, ptr(I8))
        # Third operand: the access kind of the original guard (0 = read,
        # 1 = write), so the merged check enforces the same permission.
        is_write = guard.callee_name == GUARD_STORE
        range_guard = builder.call(
            guard_range, [low_ptr, length, ConstantInt(I64, int(is_write))]
        )
        record = table.record_for(guard)
        if record is not None and record.fate in ("untouched", "hoisted"):
            record.fate = "merged"
        table.transfer(guard, range_guard)
        block = guard.parent
        block.remove(guard)
        guard.drop_all_operands()
        merged += 1
    return merged


# ---------------------------------------------------------------------------
# Optimization 3: AC/DC redundancy elimination
# ---------------------------------------------------------------------------


def _kills_availability(inst: Instruction) -> bool:
    """In the paper's AC/DC equations, KILL[i] is the set of pointer defs
    that instruction i could *redefine*.  In SSA, values are never
    redefined, so guarded-address availability survives calls and stores.
    (Region changes happen at world-stops and force every thread through
    the runtime, so an address validated earlier on this path stays valid
    by construction.)  The one thing that does invalidate availability is
    dynamic stack growth, which moves SP out from under call-guard frames."""
    return isinstance(inst, AllocaInst) and not inst.is_static


def _guard_tag(guard: CallInst) -> Optional[tuple]:
    name = guard.callee_name
    if name in (GUARD_LOAD, GUARD_STORE):
        size = guard.args[1]
        size_value = size.value if isinstance(size, ConstantInt) else 0
        return ("addr", id(guard.args[0]), size_value, name == GUARD_STORE)
    if name == GUARD_CALL:
        frame = guard.args[0]
        if isinstance(frame, ConstantInt):
            return ("frame", frame.value)
    return None


def _covered(available: Set[tuple], tag: tuple) -> bool:
    if tag[0] == "addr":
        # A prior guard covers this one only if its validated permission
        # implies ours: write implies read (no region grants write
        # without read), but a read guard passing says nothing about
        # write permission — eliding a store guard behind a load guard
        # would let stores slip through read-only (CoW-shared) regions.
        _, addr_id, size, is_write = tag
        return any(
            t[0] == "addr"
            and t[1] == addr_id
            and t[2] >= size
            and (t[3] or not is_write)
            for t in available
        )
    if tag[0] == "frame":
        return any(t[0] == "frame" and t[1] >= tag[1] for t in available)
    return False


# Public aliases for the coverage lattice.  The trace tier
# (machine.tracejit) re-runs the same write-covers-read dominance test
# over a recorded superblock at run time, so the static pass and the
# runtime elision can never disagree about what a prior guard proves.
guard_tag = _guard_tag
guard_covered = _covered


def _eliminate_redundant_guards(fn: Function, table: GuardTable) -> int:
    def generates(inst: Instruction) -> List[tuple]:
        if is_guard_call(inst):
            tag = _guard_tag(inst)  # type: ignore[arg-type]
            if tag is not None:
                return [tag]
        return []

    problem = AvailableValues(fn, generates, _kills_availability)
    facts = problem.solve()
    eliminated = 0
    for block in fn.blocks:
        fact = facts.get(block)
        available: Set[tuple] = set(fact.in_set) if fact else set()
        for inst in list(block.instructions):
            if _kills_availability(inst):
                available.clear()
                continue
            if not is_guard_call(inst):
                continue
            tag = _guard_tag(inst)  # type: ignore[arg-type]
            if tag is None:
                continue
            if _covered(available, tag):
                record = table.record_for(inst)
                if record is not None:
                    record.fate = "eliminated"
                block.remove(inst)
                inst.drop_all_operands()
                eliminated += 1
            else:
                available.add(tag)
    return eliminated
