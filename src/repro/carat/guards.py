"""Guard injection (Section 4.1.1, first half).

Conceptually every load, store, and call gets a guard validating its
address range against the kernel-supplied region set:

* loads/stores  -> ``carat.guard.load/store(ptr, size)`` *before* the access;
* calls         -> ``carat.guard.call(frame_size)`` before the call, where
  ``frame_size`` is the static maximum stack footprint of the callee
  (its allocas + fixed call overhead), verifying that the callee's pushes
  and prologue/epilogue accesses stay inside a valid region.

Each guard gets a stable integer id (stored in a side table keyed by the
call instruction) so the optimizer can attribute every original guard to
exactly one fate — untouched / hoisted / merged / eliminated — which is
what Table 1 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.carat.intrinsics import (
    CALL_OVERHEAD_BYTES,
    DEFAULT_FRAME_SIZE,
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_STORE,
    declare_intrinsic,
    is_carat_call,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from repro.ir.module import Function, Module
from repro.ir.types import I64, stride_of
from repro.ir.values import ConstantInt, Value


@dataclass
class GuardRecord:
    """Provenance of one injected guard."""

    guard_id: int
    kind: str  # 'load' | 'store' | 'call'
    function: str
    #: Fate assigned by the optimizer: 'untouched', 'hoisted', 'merged',
    #: 'eliminated'.  Starts as 'untouched'.
    fate: str = "untouched"


@dataclass
class GuardTable:
    """Side table mapping guard call instructions to their records."""

    records: Dict[int, GuardRecord] = field(default_factory=dict)
    by_inst: Dict[int, int] = field(default_factory=dict)  # id(inst) -> guard_id
    _next_id: int = 0

    def register(self, inst: CallInst, kind: str, function: str) -> GuardRecord:
        record = GuardRecord(self._next_id, kind, function)
        self.records[record.guard_id] = record
        self.by_inst[id(inst)] = record.guard_id
        self._next_id += 1
        return record

    def record_for(self, inst: Instruction) -> Optional[GuardRecord]:
        guard_id = self.by_inst.get(id(inst))
        if guard_id is None:
            return None
        return self.records[guard_id]

    def transfer(self, old_inst: Instruction, new_inst: Instruction) -> None:
        """Re-key a record when the optimizer replaces a guard instruction."""
        guard_id = self.by_inst.pop(id(old_inst), None)
        if guard_id is not None:
            self.by_inst[id(new_inst)] = guard_id

    @property
    def total(self) -> int:
        return len(self.records)

    def count_fate(self, fate: str) -> int:
        return sum(1 for r in self.records.values() if r.fate == fate)


def max_stack_footprint(fn: Function) -> int:
    """Static worst-case frame size of ``fn``: every static alloca plus the
    fixed call overhead.  Dynamic allocas make the frame unbounded, so they
    fall back to the default (their guard can never be elided)."""
    if fn.is_declaration:
        return DEFAULT_FRAME_SIZE
    total = CALL_OVERHEAD_BYTES
    for inst in fn.instructions():
        if isinstance(inst, AllocaInst):
            size = inst.allocation_size()
            if size is None:
                return DEFAULT_FRAME_SIZE
            total += size
    return total


def inject_guards(module: Module, table: Optional[GuardTable] = None) -> GuardTable:
    """Inject a guard before every load, store, and call in ``module``.

    Returns the guard table for downstream optimization and statistics.
    """
    if table is None:
        table = GuardTable()
    guard_load = declare_intrinsic(module, GUARD_LOAD)
    guard_store = declare_intrinsic(module, GUARD_STORE)
    guard_call = declare_intrinsic(module, GUARD_CALL)
    builder = IRBuilder()

    for fn in module.defined_functions():
        for block in fn.blocks:
            for inst in list(block.instructions):
                if is_carat_call(inst):
                    continue
                if isinstance(inst, LoadInst):
                    builder.position_before(inst)
                    guard = builder.call(
                        guard_load,
                        [inst.pointer, ConstantInt(I64, inst.access_size())],
                    )
                    table.register(guard, "load", fn.name)
                elif isinstance(inst, StoreInst):
                    builder.position_before(inst)
                    guard = builder.call(
                        guard_store,
                        [inst.pointer, ConstantInt(I64, inst.access_size())],
                    )
                    table.register(guard, "store", fn.name)
                elif isinstance(inst, CallInst):
                    frame = _callee_frame_size(module, inst)
                    builder.position_before(inst)
                    guard = builder.call(
                        guard_call, [ConstantInt(I64, frame)]
                    )
                    table.register(guard, "call", fn.name)
    return table


def _callee_frame_size(module: Module, call: CallInst) -> int:
    name = call.callee_name
    if name is None:
        return DEFAULT_FRAME_SIZE
    callee = module.functions.get(name)
    if callee is None or callee.is_declaration:
        return DEFAULT_FRAME_SIZE
    return max_stack_footprint(callee)


def iter_guards(fn: Function) -> List[CallInst]:
    """All guard intrinsic calls currently present in ``fn``."""
    from repro.carat.intrinsics import is_guard_call

    return [inst for inst in fn.instructions() if is_guard_call(inst)]  # type: ignore[misc]
