"""Code analyses used by the CARAT compiler pipeline.

* :mod:`repro.analysis.cfg` — orderings, reachability, edge splitting
* :mod:`repro.analysis.dominators` — dominator tree and frontiers
* :mod:`repro.analysis.loops` — natural loops and preheader creation
* :mod:`repro.analysis.dataflow` — GEN/KILL framework; liveness,
  reaching definitions, available values (AC/DC's core)
* :mod:`repro.analysis.alias` — BasicAA, TBAA, Steensgaard, chained AA
* :mod:`repro.analysis.points_to` — the Steensgaard solver
* :mod:`repro.analysis.scev` — scalar evolution and trip counts
* :mod:`repro.analysis.range_analysis` — integer interval analysis
* :mod:`repro.analysis.pdg` — control/memory dependences, post-dominators
"""

from repro.analysis.alias import (
    AliasAnalysis,
    AliasResult,
    BasicAliasAnalysis,
    ChainedAliasAnalysis,
    PointsToAliasAnalysis,
    TypeBasedAliasAnalysis,
    underlying_object,
)
from repro.analysis.cfg import (
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_post_order,
    split_critical_edges,
)
from repro.analysis.dataflow import (
    AvailableValues,
    DataflowProblem,
    LivenessAnalysis,
    ReachingDefinitions,
)
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.pdg import PostDominatorTree, ProgramDependenceGraph
from repro.analysis.points_to import SteensgaardSolver
from repro.analysis.range_analysis import Interval, ValueRangeAnalysis
from repro.analysis.scev import (
    SCEV,
    SCEVAddRec,
    SCEVConstant,
    SCEVExpander,
    SCEVUnknown,
    ScalarEvolution,
    TripCount,
)

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "BasicAliasAnalysis",
    "ChainedAliasAnalysis",
    "PointsToAliasAnalysis",
    "TypeBasedAliasAnalysis",
    "underlying_object",
    "reachable_blocks",
    "remove_unreachable_blocks",
    "reverse_post_order",
    "split_critical_edges",
    "AvailableValues",
    "DataflowProblem",
    "LivenessAnalysis",
    "ReachingDefinitions",
    "DominatorTree",
    "Loop",
    "LoopInfo",
    "PostDominatorTree",
    "ProgramDependenceGraph",
    "SteensgaardSolver",
    "Interval",
    "ValueRangeAnalysis",
    "SCEV",
    "SCEVAddRec",
    "SCEVConstant",
    "SCEVExpander",
    "SCEVUnknown",
    "ScalarEvolution",
    "TripCount",
]
