"""Iterative dataflow framework plus the stock analyses built on it.

The framework operates on per-block GEN/KILL sets (classic bit-vector
style, here with Python frozensets) and iterates to a fixed point in
reverse post-order (forward) or post-order (backward).  CARAT's AC/DC
redundancy analysis (Section 4.1.1, Optimization 3) is an *available
expressions* problem over pointer definitions, so the same machinery
serves it directly.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Generic, Hashable, List, Set, TypeVar

from repro.analysis.cfg import post_order, reverse_post_order
from repro.ir.instructions import CallInst, Instruction, LoadInst, PhiInst, StoreInst
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value

T = TypeVar("T", bound=Hashable)


class BlockFacts(Generic[T]):
    """IN/OUT sets of one block after a dataflow run."""

    __slots__ = ("in_set", "out_set")

    def __init__(self, in_set: FrozenSet[T], out_set: FrozenSet[T]) -> None:
        self.in_set = in_set
        self.out_set = out_set


class DataflowProblem(Generic[T]):
    """Specification of a GEN/KILL dataflow problem.

    Subclasses define direction, meet (union or intersection), boundary and
    initial values, and per-block GEN/KILL sets.
    """

    forward: bool = True
    meet_is_union: bool = True

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self.universe: FrozenSet[T] = self.compute_universe()

    # -- to override -------------------------------------------------------------

    def compute_universe(self) -> FrozenSet[T]:
        raise NotImplementedError

    def gen_set(self, block: BasicBlock) -> FrozenSet[T]:
        raise NotImplementedError

    def kill_set(self, block: BasicBlock) -> FrozenSet[T]:
        raise NotImplementedError

    def boundary_value(self) -> FrozenSet[T]:
        """IN of the entry (forward) or OUT of exits (backward)."""
        return frozenset()

    # -- solver --------------------------------------------------------------------

    def solve(self) -> Dict[BasicBlock, BlockFacts[T]]:
        fn = self.function
        order = reverse_post_order(fn) if self.forward else post_order(fn)
        gen = {b: self.gen_set(b) for b in order}
        kill = {b: self.kill_set(b) for b in order}
        initial = frozenset() if self.meet_is_union else self.universe
        in_sets: Dict[BasicBlock, FrozenSet[T]] = {b: initial for b in order}
        out_sets: Dict[BasicBlock, FrozenSet[T]] = {b: initial for b in order}

        changed = True
        while changed:
            changed = False
            for block in order:
                if self.forward:
                    preds = [p for p in block.predecessors() if p in in_sets]
                    if block is fn.entry:
                        meet_input = self.boundary_value()
                    else:
                        meet_input = self._meet([out_sets[p] for p in preds])
                    new_in = meet_input
                    new_out = (new_in - kill[block]) | gen[block]
                    if new_in != in_sets[block] or new_out != out_sets[block]:
                        in_sets[block] = new_in
                        out_sets[block] = new_out
                        changed = True
                else:
                    succs = [s for s in block.successors() if s in out_sets]
                    if not succs:
                        meet_input = self.boundary_value()
                    else:
                        meet_input = self._meet([in_sets[s] for s in succs])
                    new_out = meet_input
                    new_in = (new_out - kill[block]) | gen[block]
                    if new_in != in_sets[block] or new_out != out_sets[block]:
                        in_sets[block] = new_in
                        out_sets[block] = new_out
                        changed = True
        return {
            b: BlockFacts(in_sets[b], out_sets[b]) for b in order
        }

    def _meet(self, values: List[FrozenSet[T]]) -> FrozenSet[T]:
        if not values:
            return frozenset() if self.meet_is_union else self.universe
        result = values[0]
        for v in values[1:]:
            result = (result | v) if self.meet_is_union else (result & v)
        return result


# ---------------------------------------------------------------------------
# Stock analyses
# ---------------------------------------------------------------------------


class LivenessAnalysis(DataflowProblem[Value]):
    """Backward may-analysis: which SSA values are live at block boundaries.

    Used by the interpreter's stop-the-world snapshot (the analog of the
    paper's "dump register state on the stack") to know which "registers"
    can hold pointers that need patching.
    """

    forward = False
    meet_is_union = True

    def compute_universe(self) -> FrozenSet[Value]:
        values: Set[Value] = set()
        for inst in self.function.instructions():
            if not inst.type.is_void:
                values.add(inst)
        values.update(self.function.args)
        return frozenset(values)

    def gen_set(self, block: BasicBlock) -> FrozenSet[Value]:
        # Upward-exposed uses: used before (re)defined in this block.
        defined: Set[Value] = set()
        used: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                # Phi uses happen on the incoming edges, not here; treat the
                # phi itself as a definition only.
                defined.add(inst)
                continue
            for operand in inst.operands:
                if operand in self.universe and operand not in defined:
                    used.add(operand)
            if inst in self.universe:
                defined.add(inst)
        # Values used by phis of successors along our edge are live-out of
        # this block; fold them into GEN of the successor edge by adding them
        # to our gen set (conservative but sound for liveness queries).
        for succ in block.successors():
            for phi in succ.phis():
                for value, pred in phi.incoming:
                    if pred is block and value in self.universe:
                        if value not in defined:
                            used.add(value)
        return frozenset(used)

    def kill_set(self, block: BasicBlock) -> FrozenSet[Value]:
        defined = {
            inst for inst in block.instructions if inst in self.universe
        }
        return frozenset(defined)

    def live_out(self, facts: Dict[BasicBlock, BlockFacts[Value]], block: BasicBlock) -> FrozenSet[Value]:
        fact = facts.get(block)
        return fact.out_set if fact else frozenset()


class ReachingDefinitions(DataflowProblem[Instruction]):
    """Forward may-analysis over memory-writing instructions.

    An element is a store or (non-readonly) call; it "reaches" a point if
    there is a path from it to the point.  This is deliberately coarse — the
    alias analyses refine which writes can affect which loads.
    """

    forward = True
    meet_is_union = True

    def compute_universe(self) -> FrozenSet[Instruction]:
        writes = {
            inst
            for inst in self.function.instructions()
            if inst.may_write_memory()
        }
        return frozenset(writes)

    def gen_set(self, block: BasicBlock) -> FrozenSet[Instruction]:
        return frozenset(
            inst for inst in block.instructions if inst in self.universe
        )

    def kill_set(self, block: BasicBlock) -> FrozenSet[Instruction]:
        # Without must-alias information no write definitively kills another.
        return frozenset()


class AvailableValues(DataflowProblem[Value]):
    """Forward must-analysis: pointer-producing values available on *every*
    path to a block.

    This is the dataflow core of CARAT's AC/DC analysis (Optimization 3):
    ``IN[i] = ∩ OUT[p]``, ``OUT[i] = (IN[i] − KILL[i]) ∪ GEN[i]`` where the
    elements are pointer definitions.  ``kill_for`` is parameterized so the
    caller (the guard optimizer) can decide which instructions invalidate
    previously-checked pointers (e.g. calls that may free memory, or a
    kernel region change).
    """

    forward = True
    meet_is_union = False

    def __init__(
        self,
        fn: Function,
        generates: Callable[[Instruction], List[Value]],
        kills: Callable[[Instruction], bool],
    ) -> None:
        self._generates = generates
        self._kills = kills
        super().__init__(fn)

    def compute_universe(self) -> FrozenSet[Value]:
        values: Set[Value] = set()
        for inst in self.function.instructions():
            values.update(self._generates(inst))
        return frozenset(values)

    def gen_set(self, block: BasicBlock) -> FrozenSet[Value]:
        available: Set[Value] = set()
        for inst in block.instructions:
            if self._kills(inst):
                available.clear()
            available.update(self._generates(inst))
        return frozenset(available)

    def kill_set(self, block: BasicBlock) -> FrozenSet[Value]:
        if any(self._kills(inst) for inst in block.instructions):
            return self.universe
        return frozenset()
