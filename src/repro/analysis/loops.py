"""Natural loop detection and loop utilities.

A *natural loop* is identified by a back edge ``latch -> header`` where the
header dominates the latch; its body is every block that can reach the
latch without passing through the header.  Loops sharing a header are
merged.  :class:`LoopInfo` also materializes the nesting forest and can
create a dedicated *preheader* — the landing pad CARAT's Opt-1 hoists
guards into ("the pre-header of that loop", Section 4.1.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.dominators import DominatorTree
from repro.ir.builder import IRBuilder
from repro.ir.instructions import BranchInst, Instruction
from repro.ir.module import BasicBlock, Function


class Loop:
    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def contains_instruction(self, inst: Instruction) -> bool:
        return inst.parent is not None and inst.parent in self.blocks

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def exits(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        result: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in result:
                    result.append(succ)
        return result

    def exiting_blocks(self) -> List[BasicBlock]:
        result = []
        for block in self.blocks:
            if any(s not in self.blocks for s in block.successors()):
                result.append(block)
        return result

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if it exists and
        branches only to the header."""
        outside = [
            p for p in self.header.predecessors() if p not in self.blocks
        ]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if candidate.successors() != [self.header]:
            return None
        return candidate

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return (
            f"<Loop header=%{self.header.name} blocks={len(self.blocks)} "
            f"depth={self.depth}>"
        )


class LoopInfo:
    """The loop nesting forest of a function."""

    def __init__(self, fn: Function, loops: List[Loop]) -> None:
        self.function = fn
        self.loops = loops  # all loops, outermost first
        self._loop_of: Dict[BasicBlock, Loop] = {}
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for block in loop.blocks:
                # Innermost loop wins: smaller loops assigned later.
                self._loop_of[block] = loop

    @classmethod
    def compute(cls, fn: Function, domtree: Optional[DominatorTree] = None) -> "LoopInfo":
        if domtree is None:
            domtree = DominatorTree.compute(fn)
        headers: Dict[BasicBlock, Loop] = {}
        for block in fn.blocks:
            if not domtree.is_reachable(block):
                continue
            for succ in block.successors():
                if domtree.dominates(succ, block):
                    loop = headers.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        headers[succ] = loop
                    loop.latches.append(block)
                    cls._collect_body(loop, block)
        loops = list(headers.values())
        cls._build_nesting(loops)
        ordered = sorted(loops, key=lambda l: l.depth)
        return cls(fn, ordered)

    @staticmethod
    def _collect_body(loop: Loop, latch: BasicBlock) -> None:
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            stack.extend(block.predecessors())

    @staticmethod
    def _build_nesting(loops: List[Loop]) -> None:
        by_size = sorted(loops, key=lambda l: len(l.blocks))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1 :]:
                if inner is not outer and inner.header in outer.blocks:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break

    # -- queries ----------------------------------------------------------------

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, or None."""
        return self._loop_of.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop else 0

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost_loops(self) -> List[Loop]:
        return [l for l in self.loops if not l.subloops]

    # -- transforms -----------------------------------------------------------------

    def ensure_preheader(self, loop: Loop) -> BasicBlock:
        """Return the loop's preheader, creating one if needed.

        Creating a preheader retargets all out-of-loop predecessors of the
        header to a fresh block that jumps to the header, and splits phi
        incoming values accordingly.
        """
        existing = loop.preheader()
        if existing is not None:
            return existing
        fn = self.function
        header = loop.header
        outside = [p for p in header.predecessors() if p not in loop.blocks]
        pre = fn.add_block(f"preheader.{header.name}", before=header)
        builder = IRBuilder(pre)

        # Phis in the header: fold the outside incoming values into a new phi
        # in the preheader (or a direct value if there is only one outside
        # predecessor).
        for phi in header.phis():
            outside_pairs = [
                (v, b) for v, b in phi.incoming if b not in loop.blocks
            ]
            if not outside_pairs:
                continue
            if len(outside_pairs) == 1:
                merged = outside_pairs[0][0]
            else:
                from repro.ir.instructions import PhiInst

                merged_phi = PhiInst(phi.type)
                merged_phi.name = fn.unique_name(f"{phi.name}.pre")
                pre.insert(0, merged_phi)
                for value, block in outside_pairs:
                    merged_phi.add_incoming(value, block)
                merged = merged_phi
            for _, block in outside_pairs:
                phi.remove_incoming(block)
            phi.add_incoming(merged, pre)

        builder.position_at_end(pre)
        builder.br(header)

        for pred in outside:
            term = pred.terminator
            assert isinstance(term, BranchInst)
            for i, operand in enumerate(term.operands):
                if operand is header:
                    term.set_operand(i, pre)

        # Bookkeeping: the preheader belongs to any loop that contains all
        # the outside predecessors *and* the header (i.e. enclosing loops).
        enclosing = loop.parent
        while enclosing is not None:
            enclosing.blocks.add(pre)
            enclosing = enclosing.parent
        if loop.parent is not None:
            self._loop_of[pre] = loop.parent
        return pre
