"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is near-linear in practice and easy to get
right.  The dominator tree drives SSA construction (mem2reg), the verifier,
LICM's safety checks, and the AC/DC redundancy analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import reverse_post_order
from repro.ir.module import BasicBlock, Function


class DominatorTree:
    """Immediate-dominator tree for the reachable blocks of a function."""

    def __init__(
        self,
        fn: Function,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
        rpo_index: Dict[BasicBlock, int],
    ) -> None:
        self.function = fn
        self._idom = idom
        self._rpo_index = rpo_index
        self._children: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in idom
        }
        for block, parent in idom.items():
            if parent is not None:
                self._children[parent].append(block)
        # Pre-compute DFS entry/exit numbering on the dominator tree so
        # `dominates` is O(1).
        self._dfs_in: Dict[BasicBlock, int] = {}
        self._dfs_out: Dict[BasicBlock, int] = {}
        self._number_tree()

    @classmethod
    def compute(cls, fn: Function) -> "DominatorTree":
        rpo = reverse_post_order(fn)
        rpo_index = {block: i for i, block in enumerate(rpo)}
        entry = fn.entry
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: None}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while rpo_index[a] > rpo_index[b]:
                    parent = idom[a]
                    assert parent is not None
                    a = parent
                while rpo_index[b] > rpo_index[a]:
                    parent = idom[b]
                    assert parent is not None
                    b = parent
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in block.predecessors():
                    if pred not in rpo_index:
                        continue  # unreachable predecessor
                    if pred is entry or pred in idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = intersect(pred, new_idom)
                if new_idom is None:
                    continue
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        return cls(fn, idom, rpo_index)

    def _number_tree(self) -> None:
        counter = 0
        root = self.function.entry
        stack: List = [(root, False)]
        while stack:
            block, done = stack.pop()
            if done:
                self._dfs_out[block] = counter
                counter += 1
                continue
            self._dfs_in[block] = counter
            counter += 1
            stack.append((block, True))
            for child in self._children.get(block, []):
                stack.append((child, False))

    # -- queries -------------------------------------------------------------

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator, or None for the entry / unreachable blocks."""
        return self._idom.get(block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._rpo_index

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        if a not in self._dfs_in or b not in self._dfs_in:
            return False
        return (
            self._dfs_in[a] <= self._dfs_in[b]
            and self._dfs_out[b] <= self._dfs_out[a]
        )

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontiers for every reachable block (Cooper et al. §4)."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            block: set() for block in self._idom
        }
        for block in self._idom:
            preds = [p for p in block.predecessors() if p in self._idom]
            if len(preds) < 2:
                continue
            block_idom = self._idom[block]
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not block_idom:
                    frontier[runner].add(block)
                    runner = self._idom.get(runner)
        return frontier

    def blocks_preorder(self) -> List[BasicBlock]:
        """Reachable blocks in dominator-tree preorder."""
        result: List[BasicBlock] = []
        stack = [self.function.entry]
        while stack:
            block = stack.pop()
            result.append(block)
            stack.extend(reversed(self._children.get(block, [])))
        return result
