"""Control-flow graph utilities.

Blocks already know their successors (via terminators) and predecessors
(via use lists); this module adds the orderings and reachability queries
that analyses need: depth-first numbering, reverse post-order, and simple
edge-level helpers used by SSA construction and LICM.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.ir.module import BasicBlock, Function


def reverse_post_order(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order from the entry.

    Unreachable blocks are excluded.  RPO visits every block before any of
    its successors (except along back edges), which is the iteration order
    that makes forward dataflow converge fastest.
    """
    visited: Set[int] = set()
    post: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack: List[Tuple[BasicBlock, Iterator[BasicBlock]]] = [
            (block, iter(block.successors()))
        ]
        visited.add(id(block))
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if id(succ) not in visited:
                    visited.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                post.append(current)
                stack.pop()

    if fn.blocks:
        visit(fn.entry)
    return list(reversed(post))


def post_order(fn: Function) -> List[BasicBlock]:
    return list(reversed(reverse_post_order(fn)))


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    return set(reverse_post_order(fn))


def remove_unreachable_blocks(fn: Function) -> int:
    """Delete blocks not reachable from the entry.  Returns the count removed.

    Phi nodes in surviving blocks are cleaned of incoming entries from the
    deleted blocks.
    """
    reachable = reachable_blocks(fn)
    doomed = [b for b in fn.blocks if b not in reachable]
    if not doomed:
        return 0
    doomed_set = set(map(id, doomed))
    for block in fn.blocks:
        if id(block) in doomed_set:
            continue
        for phi in block.phis():
            for _, pred in list(phi.incoming):
                if id(pred) in doomed_set:
                    phi.remove_incoming(pred)
    # Sever all operand uses inside doomed blocks so cross-references among
    # doomed blocks do not keep each other alive.
    for block in doomed:
        for inst in list(block.instructions):
            inst.drop_all_operands()
    for block in doomed:
        for inst in list(block.instructions):
            for use in inst.uses:
                # Any remaining users must themselves be doomed phis; detach.
                use.user.drop_all_operands()
        fn.blocks.remove(block)
    return len(doomed)


def edges(fn: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    result = []
    for block in fn.blocks:
        for succ in block.successors():
            result.append((block, succ))
    return result


def block_index_map(fn: Function) -> Dict[BasicBlock, int]:
    return {block: i for i, block in enumerate(fn.blocks)}


def split_critical_edges(fn: Function) -> int:
    """Insert a fresh block on every critical edge (multi-successor source,
    multi-predecessor target).  Needed before edge-placed code insertion.

    Returns the number of edges split.
    """
    from repro.ir.builder import IRBuilder

    count = 0
    for block in list(fn.blocks):
        successors = block.successors()
        if len(successors) < 2:
            continue
        term = block.terminator
        assert term is not None
        for succ in successors:
            if len(succ.predecessors()) < 2:
                continue
            middle = fn.add_block(f"split.{block.name}.{succ.name}")
            builder = IRBuilder(middle)
            builder.br(succ)
            # Retarget the branch and fix phis in the old successor.
            for i, operand in enumerate(term.operands):
                if operand is succ:
                    term.set_operand(i, middle)
            for phi in succ.phis():
                for j in range(0, phi.num_operands, 2):
                    if phi.operand(j + 1) is block:
                        phi.set_operand(j + 1, middle)
            count += 1
    return count
