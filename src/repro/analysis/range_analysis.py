"""Value-range analysis for integer SSA values.

An interval domain with widening, iterated to a fixed point in reverse
post-order.  The paper cites Birch et al.'s value range analysis as the
basis of Optimization 2; here it complements SCEV by bounding pointer
*offsets* (e.g. proving an index stays within ``[0, n)`` so merged guards
can use tight extents), and it feeds Table 1's attribution of which guards
each optimization touched.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.analysis.cfg import reverse_post_order
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    ICmpInst,
    Instruction,
    PhiInst,
    SelectInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IntType
from repro.ir.values import Argument, ConstantInt, Value

NEG_INF = -math.inf
POS_INF = math.inf


class Interval:
    """A closed interval [lo, hi] over the integers, with ±inf bounds."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float) -> None:
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def of_type(ty: IntType) -> "Interval":
        return Interval(ty.min_signed, ty.max_signed)

    # -- predicates ------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and not math.isinf(self.lo)

    @property
    def is_top(self) -> bool:
        return math.isinf(self.lo) and math.isinf(self.hi)

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def is_subset_of(self, other: "Interval") -> bool:
        return other.lo <= self.lo and self.hi <= other.hi

    def is_nonnegative(self) -> bool:
        return self.lo >= 0

    def width(self) -> float:
        return self.hi - self.lo

    # -- lattice ops -------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        lo = self.lo if newer.lo >= self.lo else NEG_INF
        hi = self.hi if newer.hi <= self.hi else POS_INF
        return Interval(lo, hi)

    # -- arithmetic --------------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        candidates = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                product = _mul_inf(a, b)
                candidates.append(product)
        return Interval(min(candidates), max(candidates))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def _mul_inf(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0
    return a * b


class ValueRangeAnalysis:
    """Forward interval analysis over a function's integer SSA values.

    Branch conditions refine ranges: after ``br (icmp slt %i, %n), body,
    exit``, uses of ``%i`` inside ``body`` see an upper bound derived from
    ``%n``'s interval.  Refinement is block-level (applied to phi joins of
    the target block), which is enough to bound canonical loop counters.
    """

    WIDEN_AFTER = 3

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self._ranges: Dict[int, Interval] = {}
        self._visits: Dict[int, int] = {}
        self._run()

    def range_of(self, value: Value) -> Interval:
        if isinstance(value, ConstantInt):
            return Interval.constant(value.value)
        interval = self._ranges.get(id(value))
        if interval is not None:
            return interval
        if isinstance(value.type, IntType):
            return Interval.of_type(value.type)
        return Interval.top()

    # -- solver ---------------------------------------------------------------------

    def _run(self) -> None:
        order = reverse_post_order(self.function)
        # Arguments: bounded only by their type.
        for arg in self.function.args:
            if isinstance(arg.type, IntType):
                self._ranges[id(arg)] = Interval.of_type(arg.type)
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for block in order:
                for inst in block.instructions:
                    if not isinstance(inst.type, IntType):
                        continue
                    new = self._transfer(inst)
                    if new is None:
                        continue  # operands not computed yet (back edge)
                    old = self._ranges.get(id(inst))
                    if old is not None and new == old:
                        continue
                    visits = self._visits.get(id(inst), 0) + 1
                    self._visits[id(inst)] = visits
                    if old is not None and visits > self.WIDEN_AFTER:
                        new = old.widen(new)
                        if new == old:
                            continue
                    self._ranges[id(inst)] = new
                    changed = True

    def _transfer(self, inst: Instruction) -> Optional[Interval]:
        if isinstance(inst, PhiInst):
            # Optimistic join: incoming values not yet computed (back
            # edges on the first sweep) contribute bottom, not top —
            # otherwise every loop phi degrades to the full type range
            # before the real ranges propagate.
            result: Optional[Interval] = None
            for value, pred in inst.incoming:
                if isinstance(value, Instruction) and id(value) not in self._ranges:
                    continue
                incoming = self.range_of(value)
                refined = self._refine_on_edge(value, pred, inst.parent, incoming)
                result = refined if result is None else result.join(refined)
            if result is None:
                return None
            out = result
        elif isinstance(inst, BinaryInst):
            lhs = self.range_of(inst.lhs)
            rhs = self.range_of(inst.rhs)
            if inst.opcode == "add":
                out = lhs.add(rhs)
            elif inst.opcode == "sub":
                out = lhs.sub(rhs)
            elif inst.opcode == "mul":
                out = lhs.mul(rhs)
            elif inst.opcode in ("sdiv", "srem", "udiv", "urem"):
                out = Interval.of_type(inst.type)  # coarse
            elif inst.opcode == "and":
                # x & mask with constant non-negative mask: [0, mask].
                if isinstance(inst.rhs, ConstantInt) and inst.rhs.value >= 0:
                    out = Interval(0, inst.rhs.value)
                elif isinstance(inst.lhs, ConstantInt) and inst.lhs.value >= 0:
                    out = Interval(0, inst.lhs.value)
                else:
                    out = Interval.of_type(inst.type)
            elif inst.opcode == "shl":
                if isinstance(inst.rhs, ConstantInt):
                    out = lhs.mul(Interval.constant(1 << inst.rhs.value))
                else:
                    out = Interval.of_type(inst.type)
            else:
                out = Interval.of_type(inst.type)
        elif isinstance(inst, CastInst):
            if inst.opcode in ("sext", "zext"):
                src = self.range_of(inst.value)
                if inst.opcode == "zext" and src.lo < 0:
                    out = Interval.of_type(inst.type)
                else:
                    out = src
            elif inst.opcode == "trunc":
                src = self.range_of(inst.value)
                ty = inst.type
                assert isinstance(ty, IntType)
                if src.is_subset_of(Interval.of_type(ty)):
                    out = src
                else:
                    out = Interval.of_type(ty)
            else:
                out = Interval.of_type(inst.type) if isinstance(inst.type, IntType) else Interval.top()
        elif isinstance(inst, SelectInst):
            out = self.range_of(inst.true_value).join(self.range_of(inst.false_value))
        elif isinstance(inst, ICmpInst):
            out = Interval(0, 1)
        else:
            out = (
                Interval.of_type(inst.type)
                if isinstance(inst.type, IntType)
                else Interval.top()
            )
        # Clamp to the representable range of the result type.
        if isinstance(inst.type, IntType):
            clamped = out.meet(Interval.of_type(inst.type))
            return clamped if clamped is not None else Interval.of_type(inst.type)
        return out

    def _refine_on_edge(
        self,
        value: Value,
        pred: BasicBlock,
        target: Optional[BasicBlock],
        interval: Interval,
    ) -> Interval:
        """Refine ``value``'s interval along the CFG edge pred -> target
        using pred's branch condition."""
        if target is None:
            return interval
        term = pred.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return interval
        cond = term.condition
        if not isinstance(cond, ICmpInst):
            return interval
        then_bb, else_bb = term.targets
        if then_bb is target and else_bb is target:
            return interval
        taken_true = then_bb is target
        predicate = cond.predicate if taken_true else _negate(cond.predicate)
        if cond.lhs is value:
            other = self.range_of(cond.rhs)
            constraint = _constraint(predicate, other)
        elif cond.rhs is value:
            other = self.range_of(cond.lhs)
            constraint = _constraint(_swap(predicate), other)
        else:
            return interval
        refined = interval.meet(constraint)
        return refined if refined is not None else interval


def _constraint(predicate: str, other: Interval) -> Interval:
    if predicate in ("slt", "ult"):
        return Interval(NEG_INF, other.hi - 1)
    if predicate in ("sle", "ule"):
        return Interval(NEG_INF, other.hi)
    if predicate in ("sgt", "ugt"):
        return Interval(other.lo + 1, POS_INF)
    if predicate in ("sge", "uge"):
        return Interval(other.lo, POS_INF)
    if predicate == "eq":
        return other
    return Interval.top()


def _negate(pred: str) -> str:
    table = {
        "eq": "ne",
        "ne": "eq",
        "slt": "sge",
        "sge": "slt",
        "sgt": "sle",
        "sle": "sgt",
        "ult": "uge",
        "uge": "ult",
        "ugt": "ule",
        "ule": "ugt",
    }
    return table[pred]


def _swap(pred: str) -> str:
    table = {
        "eq": "eq",
        "ne": "ne",
        "slt": "sgt",
        "sgt": "slt",
        "sle": "sge",
        "sge": "sle",
        "ult": "ugt",
        "ugt": "ult",
        "ule": "uge",
        "uge": "ule",
    }
    return table[pred]
