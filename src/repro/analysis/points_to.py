"""Steensgaard-style unification-based points-to analysis.

Almost-linear-time flow-insensitive points-to: every pointer value maps to
an abstract node; assignments unify nodes.  Each node has a single
"pointee" node, so ``store p, q`` unifies q's pointee with p's node and
``r = load q`` unifies r's node with q's pointee.

The result answers the only question the alias layer needs: can two
pointer values reference the same abstract memory object?
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from repro.ir.module import Function, GlobalVariable
from repro.ir.values import Argument, ConstantNull, Value


class _Node:
    """A union-find node; ``pointee`` is the node this one points to."""

    __slots__ = ("parent", "rank", "pointee", "is_object")

    def __init__(self) -> None:
        self.parent: Optional["_Node"] = None
        self.rank = 0
        self.pointee: Optional["_Node"] = None
        self.is_object = False  # represents at least one concrete allocation

    def find(self) -> "_Node":
        root = self
        while root.parent is not None:
            root = root.parent
        # Path compression.
        node = self
        while node.parent is not None:
            node.parent, node = root, node.parent
        return root


class SteensgaardSolver:
    def __init__(self, fn: Function) -> None:
        self.function = fn
        self._node_of: Dict[int, _Node] = {}
        self._value_of_id: Dict[int, Value] = {}

    # -- node plumbing ------------------------------------------------------------

    def _node(self, value: Value) -> _Node:
        node = self._node_of.get(id(value))
        if node is None:
            node = _Node()
            self._node_of[id(value)] = node
            self._value_of_id[id(value)] = value
        return node.find()

    def _pointee(self, node: _Node) -> _Node:
        node = node.find()
        if node.pointee is None:
            node.pointee = _Node()
        return node.pointee.find()

    def _union(self, a: _Node, b: _Node) -> _Node:
        a, b = a.find(), b.find()
        if a is b:
            return a
        if a.rank < b.rank:
            a, b = b, a
        b.parent = a
        if a.rank == b.rank:
            a.rank += 1
        a.is_object = a.is_object or b.is_object
        # Recursively unify pointees (Steensgaard's "cjoin").
        if a.pointee is not None and b.pointee is not None:
            merged = self._union(a.pointee, b.pointee)
            a.pointee = merged
        elif b.pointee is not None:
            a.pointee = b.pointee
        return a

    def _assign(self, dst: Value, src: Value) -> None:
        """dst = src: dst and src point to the same things."""
        self._union(self._node(dst), self._node(src))

    # -- constraint generation -------------------------------------------------------

    def solve(self) -> None:
        fn = self.function
        module = fn.parent
        if module is not None:
            for gv in module.globals.values():
                node = self._node(gv)
                self._pointee(node)
                node.find().is_object = True
        for arg in fn.args:
            if arg.type.is_pointer:
                # Arguments may point to caller memory: give them a pointee
                # object node so loads through them resolve consistently.
                self._pointee(self._node(arg)).is_object = True
        for inst in fn.instructions():
            self._visit(inst)

    def _visit(self, inst: Instruction) -> None:
        if isinstance(inst, AllocaInst):
            node = self._node(inst)
            self._pointee(node).is_object = True
        elif isinstance(inst, GEPInst):
            # Field-insensitive: a GEP aliases its base.
            self._assign(inst, inst.pointer)
        elif isinstance(inst, CastInst):
            if inst.opcode in ("bitcast", "inttoptr", "ptrtoint"):
                self._assign(inst, inst.value)
        elif isinstance(inst, LoadInst):
            if inst.type.is_pointer:
                ptr_node = self._node(inst.pointer)
                self._union(self._node(inst), self._pointee(ptr_node))
        elif isinstance(inst, StoreInst):
            if inst.value.type.is_pointer:
                ptr_node = self._node(inst.pointer)
                self._union(self._pointee(ptr_node), self._node(inst.value))
        elif isinstance(inst, (PhiInst, SelectInst)):
            if inst.type.is_pointer:
                operands = (
                    [v for v, _ in inst.incoming]
                    if isinstance(inst, PhiInst)
                    else [inst.true_value, inst.false_value]
                )
                for operand in operands:
                    if operand.type.is_pointer and not isinstance(
                        operand, ConstantNull
                    ):
                        self._assign(inst, operand)
        elif isinstance(inst, CallInst):
            self._visit_call(inst)

    def _visit_call(self, call: CallInst) -> None:
        name = call.callee_name
        from repro.analysis.alias import ALLOCATION_FUNCTIONS

        if name in ALLOCATION_FUNCTIONS:
            self._pointee(self._node(call)).is_object = True
            return
        if call.is_intrinsic():
            return  # CARAT callbacks observe pointers, never retarget them
        # Unknown call: every pointer argument may be stored anywhere and the
        # result may alias any argument.  Unify conservatively.
        pointer_args = [a for a in call.args if a.type.is_pointer]
        if call.type.is_pointer:
            for arg in pointer_args:
                self._assign(call, arg)
            self._pointee(self._node(call)).is_object = True
        if len(pointer_args) >= 2:
            first = self._node(pointer_args[0])
            for arg in pointer_args[1:]:
                self._union(
                    self._pointee(first), self._pointee(self._node(arg))
                )

    # -- queries ---------------------------------------------------------------------

    def may_alias(self, a: Value, b: Value) -> bool:
        """Conservatively, do ``a`` and ``b`` possibly point at the same
        object?  Values the solver never saw are assumed to alias."""
        node_a = self._node_of.get(id(a))
        node_b = self._node_of.get(id(b))
        if node_a is None or node_b is None:
            return True
        ra, rb = node_a.find(), node_b.find()
        if ra is rb:
            return True
        # Same pointee node => both can point at the same object.
        pa = ra.pointee.find() if ra.pointee is not None else None
        pb = rb.pointee.find() if rb.pointee is not None else None
        if pa is not None and pa is pb:
            return True
        if pa is None or pb is None:
            # One side has no known pointee; stay conservative.
            return True
        return False

    def points_to_set_size(self) -> int:
        """Number of distinct pointee equivalence classes (for diagnostics)."""
        roots: Set[int] = set()
        for node in self._node_of.values():
            root = node.find()
            if root.pointee is not None:
                roots.add(id(root.pointee.find()))
        return len(roots)
