"""Scalar evolution (SCEV) analysis.

Recognizes *add recurrences*: values of the form ``{start, +, step}`` that
advance by a loop-invariant step on every iteration of a loop.  CARAT's
Optimization 2 (guard merging, Section 4.1.1) uses this to prove that a
guarded address sweeps a contiguous range during a loop, so one range
check in the preheader can replace the per-iteration guard.

The expression language is deliberately small: constants, unknowns
(loop-invariant opaque values), add recurrences, and n-ary add/mul with
constant folding.  ``SCEVExpander`` materializes expressions back into IR
at a given insertion point (the preheader).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import Loop, LoopInfo
from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    GEPInst,
    ICmpInst,
    Instruction,
    PhiInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable
from repro.ir.types import I64, IntType, PointerType, stride_of, struct_field_offset
from repro.ir.values import Argument, Constant, ConstantInt, Value


class SCEV:
    """Base class of scalar-evolution expressions."""

    def is_constant(self) -> bool:
        return isinstance(self, SCEVConstant)

    def constant_value(self) -> Optional[int]:
        return self.value if isinstance(self, SCEVConstant) else None


class SCEVConstant(SCEV):
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVConstant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("scev-const", self.value))


class SCEVUnknown(SCEV):
    """An opaque value treated as a symbol (argument, global address, call
    result, or any instruction SCEV cannot see through)."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"unknown({self.value.ref()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SCEVUnknown) and other.value is self.value

    def __hash__(self) -> int:
        return hash(("scev-unknown", id(self.value)))


class SCEVAdd(SCEV):
    __slots__ = ("operands",)

    def __init__(self, operands: List[SCEV]) -> None:
        self.operands = operands

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.operands)) + ")"


class SCEVMul(SCEV):
    __slots__ = ("operands",)

    def __init__(self, operands: List[SCEV]) -> None:
        self.operands = operands

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.operands)) + ")"


class SCEVAddRec(SCEV):
    """``{start, +, step}<loop>``: value on iteration i is start + i*step."""

    __slots__ = ("start", "step", "loop")

    def __init__(self, start: SCEV, step: SCEV, loop: Loop) -> None:
        self.start = start
        self.step = step
        self.loop = loop

    def __repr__(self) -> str:
        return f"{{{self.start!r}, +, {self.step!r}}}<%{self.loop.header.name}>"


class TripCount:
    """Symbolic iteration count of a loop: ``ceil((bound - start) / step)``
    for an exit condition ``iv <cmp> bound``.

    ``minimum_one`` records whether the loop body is guaranteed to run at
    least once (bottom-tested loop), which guard merging requires.
    """

    __slots__ = ("start", "bound", "step", "predicate", "minimum_one")

    def __init__(
        self, start: SCEV, bound: SCEV, step: int, predicate: str, minimum_one: bool
    ) -> None:
        self.start = start
        self.bound = bound
        self.step = step
        self.predicate = predicate
        self.minimum_one = minimum_one

    def constant_trip_count(self) -> Optional[int]:
        start = self.start.constant_value()
        bound = self.bound.constant_value()
        if start is None or bound is None:
            return None
        if self.predicate in ("slt", "ult"):
            span = bound - start
        elif self.predicate in ("sle", "ule"):
            span = bound - start + 1
        elif self.predicate == "ne":
            span = bound - start
            if span % self.step != 0:
                return None
        else:
            return None
        if span <= 0:
            return 0
        return (span + self.step - 1) // self.step

    def __repr__(self) -> str:
        return (
            f"<TripCount ({self.bound!r} {self.predicate} from {self.start!r} "
            f"step {self.step})>"
        )


class ScalarEvolution:
    def __init__(self, fn: Function, loop_info: Optional[LoopInfo] = None) -> None:
        self.function = fn
        self.loop_info = loop_info or LoopInfo.compute(fn)
        self._cache: Dict[int, SCEV] = {}
        self._in_progress: set = set()

    # -- construction ---------------------------------------------------------------

    def analyze(self, value: Value) -> SCEV:
        cached = self._cache.get(id(value))
        if cached is not None:
            return cached
        if id(value) in self._in_progress:
            return SCEVUnknown(value)
        self._in_progress.add(id(value))
        try:
            result = self._analyze(value)
        finally:
            self._in_progress.discard(id(value))
        self._cache[id(value)] = result
        return result

    def _analyze(self, value: Value) -> SCEV:
        if isinstance(value, ConstantInt):
            return SCEVConstant(value.value)
        if isinstance(value, (Argument, GlobalVariable)):
            return SCEVUnknown(value)
        if isinstance(value, PhiInst):
            rec = self._analyze_header_phi(value)
            if rec is not None:
                return rec
            return SCEVUnknown(value)
        if isinstance(value, BinaryInst):
            lhs = self.analyze(value.lhs)
            rhs = self.analyze(value.rhs)
            if value.opcode == "add":
                return self.add(lhs, rhs)
            if value.opcode == "sub":
                return self.add(lhs, self.mul(SCEVConstant(-1), rhs))
            if value.opcode == "mul":
                return self.mul(lhs, rhs)
            if value.opcode == "shl":
                shift = rhs.constant_value()
                if shift is not None:
                    return self.mul(lhs, SCEVConstant(1 << shift))
            return SCEVUnknown(value)
        if isinstance(value, CastInst) and value.opcode in ("sext", "zext", "bitcast"):
            # Widths are modelled as unbounded Python ints, so extensions are
            # transparent; bitcasts do not change the address.
            return self.analyze(value.value)
        if isinstance(value, GEPInst):
            return self._analyze_gep(value)
        return SCEVUnknown(value)

    def _analyze_gep(self, gep: GEPInst) -> SCEV:
        base = self.analyze(gep.pointer)
        total: SCEV = base
        current = gep.source_type
        from repro.ir.types import ArrayType, StructType

        for i, index in enumerate(gep.indices):
            if i == 0:
                scale = stride_of(current)
                total = self.add(
                    total, self.mul(self.analyze(index), SCEVConstant(scale))
                )
                continue
            if isinstance(current, ArrayType):
                scale = stride_of(current.element)
                total = self.add(
                    total, self.mul(self.analyze(index), SCEVConstant(scale))
                )
                current = current.element
            elif isinstance(current, StructType):
                assert isinstance(index, ConstantInt)
                total = self.add(
                    total,
                    SCEVConstant(struct_field_offset(current, index.value)),
                )
                current = current.fields[index.value]
            else:
                return SCEVUnknown(gep)
        return total

    def _analyze_header_phi(self, phi: PhiInst) -> Optional[SCEVAddRec]:
        block = phi.parent
        if block is None:
            return None
        loop = self.loop_info.loop_for(block)
        if loop is None or loop.header is not block:
            return None
        incoming = phi.incoming
        if len(incoming) != 2:
            return None
        start_value = None
        latch_value = None
        for value, pred in incoming:
            if pred in loop.blocks:
                latch_value = value
            else:
                start_value = value
        if start_value is None or latch_value is None:
            return None
        # latch_value must be phi + step with step loop-invariant.
        if not isinstance(latch_value, BinaryInst):
            return None
        if latch_value.opcode == "add":
            if latch_value.lhs is phi:
                step_value = latch_value.rhs
            elif latch_value.rhs is phi:
                step_value = latch_value.lhs
            else:
                return None
            sign = 1
        elif latch_value.opcode == "sub" and latch_value.lhs is phi:
            step_value = latch_value.rhs
            sign = -1
        else:
            return None
        if not self.is_loop_invariant(step_value, loop):
            return None
        step = self.analyze(step_value)
        if sign < 0:
            step = self.mul(SCEVConstant(-1), step)
        start = self.analyze(start_value)
        return SCEVAddRec(start, step, loop)

    # -- algebra ---------------------------------------------------------------------

    def add(self, a: SCEV, b: SCEV) -> SCEV:
        ca, cb = a.constant_value(), b.constant_value()
        if ca is not None and cb is not None:
            return SCEVConstant(ca + cb)
        if ca == 0:
            return b
        if cb == 0:
            return a
        if isinstance(a, SCEVAddRec) and isinstance(b, SCEVAddRec):
            if a.loop is b.loop:
                return SCEVAddRec(
                    self.add(a.start, b.start), self.add(a.step, b.step), a.loop
                )
            return SCEVAdd([a, b])
        if isinstance(b, SCEVAddRec):
            a, b = b, a
        if isinstance(a, SCEVAddRec):
            return SCEVAddRec(self.add(a.start, b), a.step, a.loop)
        return SCEVAdd([a, b])

    def mul(self, a: SCEV, b: SCEV) -> SCEV:
        ca, cb = a.constant_value(), b.constant_value()
        if ca is not None and cb is not None:
            return SCEVConstant(ca * cb)
        if ca == 1:
            return b
        if cb == 1:
            return a
        if ca == 0 or cb == 0:
            return SCEVConstant(0)
        if isinstance(b, SCEVAddRec):
            a, b = b, a
        if isinstance(a, SCEVAddRec) and not isinstance(b, SCEVAddRec):
            return SCEVAddRec(self.mul(a.start, b), self.mul(a.step, b), a.loop)
        return SCEVMul([a, b])

    # -- loop facts -----------------------------------------------------------------

    def is_loop_invariant(self, value: Value, loop: Loop) -> bool:
        if isinstance(value, (Constant, Argument, GlobalVariable, Function)):
            return True
        if isinstance(value, Instruction):
            return value.parent is not None and value.parent not in loop.blocks
        return False

    def scev_is_invariant(self, scev: SCEV, loop: Loop) -> bool:
        if isinstance(scev, SCEVConstant):
            return True
        if isinstance(scev, SCEVUnknown):
            return self.is_loop_invariant(scev.value, loop)
        if isinstance(scev, (SCEVAdd, SCEVMul)):
            return all(self.scev_is_invariant(op, loop) for op in scev.operands)
        if isinstance(scev, SCEVAddRec):
            return scev.loop is not loop and not self._addrec_in(scev, loop)
        return False

    @staticmethod
    def _addrec_in(scev: SCEVAddRec, loop: Loop) -> bool:
        return scev.loop is loop or loop.contains(scev.loop.header)

    def trip_count(self, loop: Loop) -> Optional[TripCount]:
        """Recognize the canonical exit ``br (icmp pred iv, bound), body, exit``
        on the header or latch, with ``iv`` an addrec of this loop with a
        positive constant step."""
        candidates: List[BasicBlock] = []
        if loop.header in loop.exiting_blocks():
            candidates.append(loop.header)
        for latch in loop.latches:
            if latch in loop.exiting_blocks() and latch not in candidates:
                candidates.append(latch)
        for block in candidates:
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            cond = term.condition
            if not isinstance(cond, ICmpInst):
                continue
            then_bb, else_bb = term.targets
            # The loop continues while cond is true and then-target is inside.
            if then_bb in loop.blocks and else_bb not in loop.blocks:
                predicate = cond.predicate
            elif else_bb in loop.blocks and then_bb not in loop.blocks:
                predicate = _negate_predicate(cond.predicate)
            else:
                continue
            iv_scev = self.analyze(cond.lhs)
            bound_value = cond.rhs
            if not isinstance(iv_scev, SCEVAddRec) or iv_scev.loop is not loop:
                # Try the swapped orientation: bound < iv.
                iv_scev2 = self.analyze(cond.rhs)
                if isinstance(iv_scev2, SCEVAddRec) and iv_scev2.loop is loop:
                    iv_scev = iv_scev2
                    bound_value = cond.lhs
                    predicate = _swap_predicate(predicate)
                else:
                    continue
            step = iv_scev.step.constant_value()
            if step is None or step <= 0:
                continue
            if predicate not in ("slt", "ult", "sle", "ule", "ne"):
                continue
            if not self.is_loop_invariant(bound_value, loop):
                continue
            bound = self.analyze(bound_value)
            if not self.scev_is_invariant(iv_scev.start, loop):
                continue
            minimum_one = block is not loop.header
            return TripCount(iv_scev.start, bound, step, predicate, minimum_one)
        return None

    def symbolic_trip_count(self, trip: TripCount) -> Optional[SCEV]:
        """The iteration count as a loop-invariant SCEV.

        Constant when possible; otherwise only unit-step inductions have a
        division-free symbolic form (``bound - start`` and friends).  The
        result may be negative/zero at run time for top-tested loops — the
        consumer must clamp (guard merging emits a select for this).
        """
        n = trip.constant_trip_count()
        if n is not None:
            return SCEVConstant(n)
        neg_start = self.mul(SCEVConstant(-1), trip.start)
        if trip.step == 1 and trip.predicate in ("slt", "ult", "ne"):
            return self.add(trip.bound, neg_start)
        if trip.step == 1 and trip.predicate in ("sle", "ule"):
            return self.add(self.add(trip.bound, SCEVConstant(1)), neg_start)
        return None

    def affine_range(
        self, address: Value, loop: Loop
    ) -> Optional[Tuple[SCEV, int, SCEV]]:
        """For an address that evolves as ``{start, +, step}`` over ``loop``
        with constant ``step``, return ``(start, step, iterations)`` with
        ``start`` and ``iterations`` loop-invariant SCEVs.

        The addresses touched are ``start + i*step`` for ``0 <= i < n``.
        """
        scev = self.analyze(address)
        if not isinstance(scev, SCEVAddRec) or scev.loop is not loop:
            return None
        step = scev.step.constant_value()
        if step is None:
            return None
        if not self.scev_is_invariant(scev.start, loop):
            return None
        # Early exits (break) make the canonical trip count an over-
        # approximation of the iterations that actually run; a merged
        # guard built from it could fault on addresses the program never
        # touches.  Require the canonical exit to be the only one.
        if len(loop.exiting_blocks()) != 1:
            return None
        trip = self.trip_count(loop)
        if trip is None:
            return None
        n_scev = self.symbolic_trip_count(trip)
        if n_scev is None:
            return None
        if not self.scev_is_invariant(n_scev, loop):
            return None
        return (scev.start, step, n_scev)

    def address_range_in_loop(
        self, address: Value, loop: Loop
    ) -> Optional[Tuple[SCEV, SCEV, int]]:
        """For an address that is an addrec of ``loop``, the (low, high, step)
        swept over the loop's lifetime, where low/high are loop-invariant
        SCEVs for the first and last byte addresses touched (exclusive of
        access size).  Returns None when the trip count or evolution cannot
        be established."""
        scev = self.analyze(address)
        if not isinstance(scev, SCEVAddRec) or scev.loop is not loop:
            return None
        step = scev.step.constant_value()
        if step is None:
            return None
        if not self.scev_is_invariant(scev.start, loop):
            return None
        trip = self.trip_count(loop)
        if trip is None:
            return None
        n = trip.constant_trip_count()
        if n is None or n <= 0:
            return None
        first = scev.start
        last = self.add(scev.start, SCEVConstant(step * (n - 1)))
        if step >= 0:
            return (first, last, step)
        return (last, first, step)


def _negate_predicate(pred: str) -> str:
    table = {
        "eq": "ne",
        "ne": "eq",
        "slt": "sge",
        "sge": "slt",
        "sgt": "sle",
        "sle": "sgt",
        "ult": "uge",
        "uge": "ult",
        "ugt": "ule",
        "ule": "ugt",
    }
    return table[pred]


def _swap_predicate(pred: str) -> str:
    table = {
        "eq": "eq",
        "ne": "ne",
        "slt": "sgt",
        "sgt": "slt",
        "sle": "sge",
        "sge": "sle",
        "ult": "ugt",
        "ugt": "ult",
        "ule": "uge",
        "uge": "ule",
    }
    return table[pred]


def scev_is_expandable(scev: SCEV) -> bool:
    """Can :class:`SCEVExpander` materialize this expression?  Add
    recurrences cannot be expanded as straight-line code (their value is
    iteration-dependent), even when they are invariant with respect to an
    *inner* loop."""
    if isinstance(scev, (SCEVConstant, SCEVUnknown)):
        return True
    if isinstance(scev, (SCEVAdd, SCEVMul)):
        return all(scev_is_expandable(op) for op in scev.operands)
    return False


class SCEVExpander:
    """Materialize loop-invariant SCEV expressions as IR at a builder's
    insertion point (typically a loop preheader)."""

    def __init__(self, builder: IRBuilder) -> None:
        self.builder = builder

    def expand(self, scev: SCEV) -> Value:
        if isinstance(scev, SCEVConstant):
            return ConstantInt(I64, scev.value)
        if isinstance(scev, SCEVUnknown):
            value = scev.value
            if value.type.is_pointer:
                return self.builder.ptrtoint(value, I64)
            if isinstance(value.type, IntType) and value.type.bits < 64:
                return self.builder.sext(value, I64)
            return value
        if isinstance(scev, SCEVAdd):
            result = self.expand(scev.operands[0])
            for op in scev.operands[1:]:
                result = self.builder.add(result, self.expand(op))
            return result
        if isinstance(scev, SCEVMul):
            result = self.expand(scev.operands[0])
            for op in scev.operands[1:]:
                result = self.builder.mul(result, self.expand(op))
            return result
        raise ValueError(f"cannot expand non-invariant SCEV: {scev!r}")
