"""Memory alias analyses and the best-of-N chaining combiner.

The paper combines 15 alias analyses using LLVM's alias-chaining feature
("which implements a best-of-N approach", Section 4.1).  We reproduce the
architecture with three analyses — a BasicAA over allocation sites, a
type-based AA, and a Steensgaard points-to AA — combined by
:class:`ChainedAliasAnalysis`: the first analysis that returns a definite
answer (NoAlias or MustAlias) wins; otherwise the result stays MayAlias.

Soundness contract: an analysis may only return ``NO_ALIAS`` when the two
pointers can never address overlapping bytes, and ``MUST_ALIAS`` only when
they always address the same byte.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from repro.ir.module import Function, GlobalVariable
from repro.ir.types import PointerType, size_of
from repro.ir.values import Argument, ConstantInt, ConstantNull, Value


class AliasResult(enum.Enum):
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


ALLOCATION_FUNCTIONS = frozenset({"malloc", "calloc", "realloc"})


def underlying_object(pointer: Value, max_depth: int = 32) -> Value:
    """Strip GEPs and pointer bitcasts to find the base object.

    The result is one of: an alloca, a global, a call to an allocation
    function, an argument, a load (pointer read from memory), a phi/select,
    or null.
    """
    current = pointer
    for _ in range(max_depth):
        if isinstance(current, GEPInst):
            current = current.pointer
        elif isinstance(current, CastInst) and current.opcode == "bitcast":
            current = current.value
        else:
            return current
    return current


def is_identified_object(value: Value) -> bool:
    """True for values that name a distinct allocation: allocas, globals,
    and direct calls to allocation functions."""
    if isinstance(value, (AllocaInst, GlobalVariable)):
        return True
    if isinstance(value, CallInst):
        return value.callee_name in ALLOCATION_FUNCTIONS
    return False


class AliasAnalysis:
    """Interface: judge whether two pointer values may address overlapping
    memory.  ``size_a``/``size_b`` are access sizes in bytes (0 = unknown)."""

    name = "abstract"

    def alias(
        self, a: Value, b: Value, size_a: int = 0, size_b: int = 0
    ) -> AliasResult:
        raise NotImplementedError


class BasicAliasAnalysis(AliasAnalysis):
    """Allocation-site reasoning, in the spirit of LLVM's BasicAA:

    * identical values must alias;
    * two *different* identified objects never alias;
    * null aliases nothing;
    * GEPs off the same base with disjoint constant offset ranges never
      alias;
    * GEPs off the same base with identical constant offsets must alias.
    """

    name = "basic-aa"

    def alias(
        self, a: Value, b: Value, size_a: int = 0, size_b: int = 0
    ) -> AliasResult:
        if a is b:
            return AliasResult.MUST_ALIAS
        if isinstance(a, ConstantNull) or isinstance(b, ConstantNull):
            return AliasResult.NO_ALIAS

        base_a = underlying_object(a)
        base_b = underlying_object(b)

        if base_a is not base_b:
            if is_identified_object(base_a) and is_identified_object(base_b):
                return AliasResult.NO_ALIAS
            # An identified local object cannot alias memory reachable
            # through an argument pointer unless its address escapes; a
            # never-escaping alloca is private to this function.
            for local, other in ((base_a, base_b), (base_b, base_a)):
                if isinstance(local, AllocaInst) and not _address_escapes(local):
                    if isinstance(other, (Argument, LoadInst)):
                        return AliasResult.NO_ALIAS
            return AliasResult.MAY_ALIAS

        # Same base object: compare constant offsets when available.
        off_a = _constant_offset_from(a, base_a)
        off_b = _constant_offset_from(b, base_b)
        if off_a is None or off_b is None:
            return AliasResult.MAY_ALIAS
        if off_a == off_b:
            return AliasResult.MUST_ALIAS
        ext_a = size_a or _access_extent(a)
        ext_b = size_b or _access_extent(b)
        if ext_a and ext_b:
            lo, hi = (off_a, off_b) if off_a < off_b else (off_b, off_a)
            lo_ext = ext_a if off_a < off_b else ext_b
            if lo + lo_ext <= hi:
                return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS


def _address_escapes(alloca: AllocaInst) -> bool:
    """Does the alloca's address flow anywhere except direct loads/stores
    *through* it?  (Storing the address itself is an escape — the very thing
    CARAT's escape tracking records.)"""
    worklist: List[Value] = [alloca]
    seen = set()
    while worklist:
        value = worklist.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for use in value.uses:
            user = use.user
            if isinstance(user, LoadInst):
                continue
            if user.opcode == "store":
                if user.operand(0) is value:  # address stored somewhere
                    return True
                continue
            if isinstance(user, (GEPInst, CastInst, PhiInst, SelectInst)):
                worklist.append(user)
                continue
            if isinstance(user, CallInst):
                if not user.is_intrinsic():
                    return True
                continue
            if user.opcode in ("icmp", "ptrtoint"):
                continue
            return True
    return False


def _constant_offset_from(pointer: Value, base: Value) -> Optional[int]:
    offset = 0
    current = pointer
    while current is not base:
        if isinstance(current, GEPInst):
            step = current.constant_offset()
            if step is None:
                return None
            offset += step
            current = current.pointer
        elif isinstance(current, CastInst) and current.opcode == "bitcast":
            current = current.value
        else:
            return None
    return offset


def _access_extent(pointer: Value) -> int:
    if isinstance(pointer.type, PointerType):
        try:
            return size_of(pointer.type.pointee)
        except Exception:
            return 0
    return 0


class TypeBasedAliasAnalysis(AliasAnalysis):
    """Strict-aliasing TBAA: pointers to distinct scalar types do not alias.

    Pointers involving i8 are exempt (the C "char can alias anything" rule,
    which also covers malloc'd memory before it is bitcast).
    """

    name = "tbaa"

    def alias(
        self, a: Value, b: Value, size_a: int = 0, size_b: int = 0
    ) -> AliasResult:
        ty_a = a.type
        ty_b = b.type
        if not (isinstance(ty_a, PointerType) and isinstance(ty_b, PointerType)):
            return AliasResult.MAY_ALIAS
        pa, pb = ty_a.pointee, ty_b.pointee
        if pa == pb:
            return AliasResult.MAY_ALIAS
        from repro.ir.types import I8, IntType, FloatType

        if pa == I8 or pb == I8:
            return AliasResult.MAY_ALIAS
        scalar = (IntType, FloatType)
        if isinstance(pa, scalar) and isinstance(pb, scalar):
            return AliasResult.NO_ALIAS
        # Scalar vs pointer-typed pointee: distinct under strict aliasing.
        if isinstance(pa, scalar) and isinstance(pb, PointerType):
            return AliasResult.NO_ALIAS
        if isinstance(pb, scalar) and isinstance(pa, PointerType):
            return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS


class PointsToAliasAnalysis(AliasAnalysis):
    """Adapter over the Steensgaard points-to solver: two pointers whose
    points-to sets are disjoint cannot alias."""

    name = "steensgaard"

    def __init__(self, fn: Function) -> None:
        from repro.analysis.points_to import SteensgaardSolver

        self._solver = SteensgaardSolver(fn)
        self._solver.solve()

    def alias(
        self, a: Value, b: Value, size_a: int = 0, size_b: int = 0
    ) -> AliasResult:
        if a is b:
            return AliasResult.MUST_ALIAS
        if self._solver.may_alias(a, b):
            return AliasResult.MAY_ALIAS
        return AliasResult.NO_ALIAS


class ChainedAliasAnalysis(AliasAnalysis):
    """Best-of-N combiner (the paper chains 15 analyses; we chain 3).

    The first definite answer wins.  The chain is sound as long as each
    member is sound, because NoAlias/MustAlias answers are definitive.
    """

    name = "chained"

    def __init__(self, analyses: List[AliasAnalysis]) -> None:
        if not analyses:
            raise ValueError("ChainedAliasAnalysis requires at least one analysis")
        self.analyses = list(analyses)

    @classmethod
    def standard(cls, fn: Function) -> "ChainedAliasAnalysis":
        """The default chain used by the CARAT pipeline."""
        return cls(
            [
                BasicAliasAnalysis(),
                TypeBasedAliasAnalysis(),
                PointsToAliasAnalysis(fn),
            ]
        )

    def alias(
        self, a: Value, b: Value, size_a: int = 0, size_b: int = 0
    ) -> AliasResult:
        for analysis in self.analyses:
            result = analysis.alias(a, b, size_a, size_b)
            if result is not AliasResult.MAY_ALIAS:
                return result
        return AliasResult.MAY_ALIAS
