"""Program dependence analysis.

Builds the three dependence families the paper's "PD analysis" provides
(Section 4.1, citing Ferrante et al.):

* **data dependences** — SSA use-def edges (free: the IR maintains them);
* **memory dependences** — may-alias store/load and store/store pairs,
  plus conservative edges around opaque calls, refined by a pluggable
  alias analysis;
* **control dependences** — computed from the post-dominator tree in the
  classic way: X is control-dependent on Y when Y branches, X post-
  dominates one successor of Y, and X does not post-dominate Y.

The CARAT pipeline uses this to strengthen loop-invariance detection
(Optimization 1): an address loaded from memory is invariant in a loop if
no instruction in the loop may write the location it was loaded from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.loops import Loop
from repro.ir.instructions import (
    BranchInst,
    CallInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function


class PostDominatorTree:
    """Post-dominators via the CHK algorithm on the reversed CFG.

    Functions can have several exits (multiple ``ret`` blocks and
    ``unreachable``); we use a virtual exit node represented by ``None``.
    """

    def __init__(self, fn: Function) -> None:
        self.function = fn
        self._ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.function
        exits = [b for b in fn.blocks if not b.successors()]
        if not exits:
            # Infinite loop with no exit; nothing post-dominates anything.
            return
        # Reverse post-order of the reversed CFG, from the virtual exit.
        order: List[BasicBlock] = []
        visited: Set[int] = set()

        def dfs(start: BasicBlock) -> None:
            stack: List[Tuple[BasicBlock, int]] = [(start, 0)]
            visited.add(id(start))
            while stack:
                block, index = stack.pop()
                preds = block.predecessors()
                if index < len(preds):
                    stack.append((block, index + 1))
                    pred = preds[index]
                    if id(pred) not in visited:
                        visited.add(id(pred))
                        stack.append((pred, 0))
                else:
                    order.append(block)

        for exit_block in exits:
            if id(exit_block) not in visited:
                dfs(exit_block)
        order.reverse()
        index_of = {b: i for i, b in enumerate(order)}

        ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        for exit_block in exits:
            ipdom[exit_block] = None  # virtual exit is the parent

        def intersect(a: BasicBlock, b: BasicBlock) -> Optional[BasicBlock]:
            while a is not b:
                while index_of[a] > index_of[b]:
                    parent = ipdom.get(a)
                    if parent is None:
                        return None
                    a = parent
                while index_of[b] > index_of[a]:
                    parent = ipdom.get(b)
                    if parent is None:
                        return None
                    b = parent
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                if block in exits:
                    continue
                succs = [s for s in block.successors() if s in index_of]
                new: Optional[BasicBlock] = None
                seeded = False
                for succ in succs:
                    if succ in ipdom:
                        if not seeded:
                            new = succ
                            seeded = True
                        elif new is not None:
                            new = intersect(succ, new)
                if not seeded:
                    continue
                if block not in ipdom or ipdom[block] is not new:
                    ipdom[block] = new
                    changed = True
        self._ipdom = ipdom

    def ipdom(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self._ipdom.get(block)

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when every path from ``b`` to an exit passes through ``a``."""
        if a is b:
            return True
        current = self._ipdom.get(b)
        seen = 0
        while current is not None and seen < 10_000:
            if current is a:
                return True
            current = self._ipdom.get(current)
            seen += 1
        return False


class ProgramDependenceGraph:
    def __init__(self, fn: Function, aa: AliasAnalysis) -> None:
        self.function = fn
        self.aa = aa
        self.post_dom = PostDominatorTree(fn)
        self._control_deps: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute_control_deps()

    # -- control dependences -------------------------------------------------------

    def _compute_control_deps(self) -> None:
        for block in self.function.blocks:
            term = block.terminator
            if not isinstance(term, BranchInst) or not term.is_conditional:
                continue
            for succ in term.targets:
                # Walk up from succ in the post-dominator tree until we reach
                # block's immediate post-dominator; every node on the way is
                # control-dependent on `block`.
                stop = self.post_dom.ipdom(block)
                current: Optional[BasicBlock] = succ
                guard = 0
                while current is not None and current is not stop and guard < 10_000:
                    self._control_deps.setdefault(current, [])
                    if block not in self._control_deps[current]:
                        self._control_deps[current].append(block)
                    current = self.post_dom.ipdom(current)
                    guard += 1

    def control_dependences(self, block: BasicBlock) -> List[BasicBlock]:
        """Blocks whose branch decides whether ``block`` executes."""
        return list(self._control_deps.get(block, []))

    # -- memory dependences ----------------------------------------------------------

    def may_write_to(self, writer: Instruction, pointer, size: int = 0) -> bool:
        """Could ``writer`` modify the bytes addressed by ``pointer``?"""
        if isinstance(writer, StoreInst):
            result = self.aa.alias(
                writer.pointer, pointer, writer.access_size(), size
            )
            return result is not AliasResult.NO_ALIAS
        if isinstance(writer, CallInst):
            if writer.is_readonly_call() or writer.is_intrinsic():
                return False
            from repro.analysis.alias import (
                ALLOCATION_FUNCTIONS,
                is_identified_object,
                underlying_object,
            )

            name = writer.callee_name
            if name in ALLOCATION_FUNCTIONS:
                return False  # fresh memory cannot overlap existing pointers
            if name == "free":
                return True
            # An opaque call can write anything reachable from escaped
            # pointers; a non-escaping local object is safe.
            base = underlying_object(pointer)
            from repro.analysis.alias import _address_escapes
            from repro.ir.instructions import AllocaInst

            if isinstance(base, AllocaInst) and not _address_escapes(base):
                return False
            return True
        return writer.may_write_memory()

    def writers_in_loop(self, loop: Loop, pointer, size: int = 0) -> List[Instruction]:
        """All instructions inside ``loop`` that may modify ``*pointer``."""
        result = []
        for inst in loop.instructions():
            if inst.may_write_memory() and self.may_write_to(inst, pointer, size):
                result.append(inst)
        return result

    def load_is_invariant_in_loop(self, load: LoadInst, loop: Loop) -> bool:
        """Would re-executing ``load`` anywhere in the loop yield the same
        value?  True when its address is invariant and nothing in the loop
        may write the loaded location.  This is the PD-analysis-powered
        invariance the paper says "significantly improved the detection of
        loop invariants"."""

        address = load.pointer
        if isinstance(address, Instruction) and address.parent in loop.blocks:
            return False
        return not self.writers_in_loop(loop, address, load.access_size())

    def memory_dependences(
        self, inst: Instruction
    ) -> List[Instruction]:
        """Instructions earlier in the function that ``inst`` may depend on
        through memory (flow dependences only, block order approximation)."""
        if not isinstance(inst, LoadInst):
            return []
        deps = []
        for other in self.function.instructions():
            if other is inst:
                break
            if other.may_write_memory() and self.may_write_to(
                other, inst.pointer, inst.access_size()
            ):
                deps.append(other)
        return deps
