"""Unified telemetry: structured tracing, metrics, cycle profiling.

CARAT's argument is an *accounting* argument — software memory
management lives or dies on fine-grained cost attribution (PAPER.md §6).
This package is the observability substrate every layer reports through:

* :mod:`repro.telemetry.tracer` — a low-overhead structured event
  tracer (spans, instants, counters) buffered in memory and exportable
  as JSONL or Chrome ``trace_event`` JSON.  Compiler passes, guard
  checks, Figure-8 protocol steps, policy epochs, and the resilience
  machinery all emit through it when a tracer is attached;
* :mod:`repro.telemetry.metrics` — counters, gauges, and histograms in
  a :class:`MetricsRegistry` that also absorbs the per-layer stats
  dataclasses (``InterpStats``, ``RuntimeStats``, ``KernelStats``,
  ``EscapeStats``) behind one ``snapshot()``/``to_dict()`` schema;
* :mod:`repro.telemetry.profiler` — a cycle-attributed profiler that
  buckets the interpreter's simulated-cycle spend (app compute, guards,
  tracking, MMU/TLB, page faults, tiering) per function and per
  allocation site, with buckets summing *exactly* to
  ``InterpStats.cycles`` on both execution engines;
* :mod:`repro.telemetry.schema` — the JSONL trace-event schema and a
  dependency-free validator (used by tests and the CI trace-smoke job).

Telemetry is strictly opt-in and charges **zero simulated cycles**: no
emitter ever touches ``stats.cycles``, so a run with tracing or
profiling enabled is cycle-identical to one without.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    run_snapshot,
)
from repro.telemetry.profiler import PROFILE_CATEGORIES, CycleProfiler
from repro.telemetry.schema import TRACE_SCHEMA, validate_events, validate_jsonl
from repro.telemetry.tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "CycleProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROFILE_CATEGORIES",
    "TRACE_SCHEMA",
    "TraceEvent",
    "Tracer",
    "run_snapshot",
    "validate_events",
    "validate_jsonl",
]
