"""The metrics registry: counters, gauges, histograms, one schema.

Before this layer existed, four ad-hoc stats dataclasses
(``InterpStats``, ``RuntimeStats``, ``KernelStats``, ``EscapeStats``)
each had their own shape and only the CLI ``--stats`` printer knew how
to read them.  The registry gives them one uniform surface:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — primitives a
  layer can allocate by name (get-or-create, so emitters never need to
  coordinate registration);
* :meth:`MetricsRegistry.absorb` — fold any object with a ``to_dict()``
  (all four stats dataclasses grow one in this PR) into the registry
  under a prefix;
* :meth:`MetricsRegistry.snapshot` — flat ``{dotted.name: value}``
  mapping, and :meth:`MetricsRegistry.to_dict` — the nested form;
* :func:`run_snapshot` — one call that turns a finished ``RunResult``
  into the ``carat.run.v1`` document benchmarks, the sanitizer report,
  and CI all read.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

#: Version tag on every run snapshot so downstream readers can detect drift.
RUN_SNAPSHOT_SCHEMA = "carat.run.v1"


def _stats_dict(obj) -> dict:
    """Uniform ``to_dict`` protocol: prefer an explicit ``to_dict``,
    fall back to dataclass introspection (nested dataclasses included)."""
    if obj is None:
        return {}
    if isinstance(obj, dict):
        return dict(obj)
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if dataclasses.is_dataclass(obj):
        return dataclasses.asdict(obj)
    raise TypeError(f"{type(obj).__name__} has no to_dict() and is not a dataclass")


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (may go up or down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def add(self, delta) -> None:
        self.value += delta

    def snapshot(self):
        return self.value


class Histogram:
    """Power-of-two bucketed distribution of non-negative integers.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)`` (bucket 0
    counts zeros and ones are in bucket 1 — i.e. bucket index is the
    observation's bit length).  Cheap, dependency-free, and good enough
    to see orders of magnitude in cycle costs.
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, max_buckets: int = 64) -> None:
        self.name = name
        self.buckets: List[int] = [0] * max_buckets
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError("histogram observations must be non-negative")
        index = min(value.bit_length(), len(self.buckets) - 1)
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        highest = max(
            (i for i, n in enumerate(self.buckets) if n), default=-1
        )
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": self.buckets[: highest + 1],
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics plus absorbed stats."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._absorbed: Dict[str, dict] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def absorb(self, prefix: str, stats) -> None:
        """Fold a stats object (``to_dict()`` or dataclass) in under
        ``prefix``; re-absorbing the same prefix overwrites (snapshots
        are point-in-time)."""
        self._absorbed[prefix] = _stats_dict(stats)

    # -- reading ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Nested form: absorbed sections by prefix + a ``metrics``
        section of live primitives."""
        out: Dict[str, dict] = {}
        for prefix, section in sorted(self._absorbed.items()):
            out[prefix] = dict(section)
        if self._metrics:
            out["metrics"] = {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }
        return out

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{dotted.name: scalar-or-dict}`` view of everything."""
        flat: Dict[str, object] = {}

        def _flatten(prefix: str, value) -> None:
            if isinstance(value, dict):
                for key, sub in value.items():
                    _flatten(f"{prefix}.{key}" if prefix else str(key), sub)
            else:
                flat[prefix] = value

        _flatten("", self.to_dict())
        return flat


def run_snapshot(result) -> dict:
    """The ``carat.run.v1`` document for a finished run.

    Works on any ``RunResult``-shaped object: reads ``result.stats``
    (interpreter), and — when present — the runtime, kernel, escape-map,
    and MMU stats hanging off ``result.process`` / ``result.kernel``,
    plus the profiler report if the run was profiled.  Sections absent
    from the run (e.g. no MMU in CARAT mode) are simply omitted.
    """
    registry = MetricsRegistry()
    registry.absorb("interp", getattr(result, "stats", None))

    process = getattr(result, "process", None)
    runtime = getattr(process, "runtime", None) if process else None
    if runtime is not None:
        registry.absorb("runtime", runtime.stats)
        escapes = getattr(runtime, "escapes", None)
        if escapes is not None:
            registry.absorb("escapes", escapes.stats)
    kernel = getattr(result, "kernel", None)
    if kernel is not None:
        registry.absorb("kernel", kernel.stats)
    mmu = getattr(process, "mmu", None) if process else None
    if mmu is not None:
        registry.absorb("mmu", mmu.stats)
        registry.absorb("dtlb", mmu.dtlb.stats)
        registry.absorb("stlb", mmu.stlb.stats)
    tracer = getattr(result, "tracer", None)
    if tracer is not None:
        registry.absorb(
            "tracer",
            {
                "events": len(tracer.events),
                "dropped_events": tracer.dropped_events,
                "max_events": tracer.max_events,
            },
        )

    document = {
        "schema": RUN_SNAPSHOT_SCHEMA,
        "exit_code": getattr(result, "exit_code", None),
    }
    document.update(registry.to_dict())

    profile = getattr(result, "profile", None)
    if profile is not None:
        document["profile"] = profile.to_dict()
    config = getattr(result, "config", None)
    if config is not None:
        document["config"] = config.to_dict()
    return document
