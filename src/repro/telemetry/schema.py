"""The trace-event schema and a dependency-free validator.

Every line of a trace JSONL file (and every element of a Chrome
``traceEvents`` array) is one JSON object with this shape::

    {
      "name": str,            # event name, e.g. "fig8.step03" or "pass.dce"
      "cat":  str,            # emitting layer — see CATEGORIES in tracer.py
      "ph":   "B"|"E"|"i"|"C",# phase: span begin/end, instant, counter
      "ts":   int >= 0,       # simulated cycles (logical seq pre-machine)
      "pid":  int,            # owning tenant's PID (0 = single-process run)
      "tid":  int,            # logical track, 0 = main
      "args": object,         # optional structured payload
      "s":    "t",            # instants only: scope = thread
    }

The validator is intentionally plain Python (no jsonschema dependency —
the container image is frozen): it checks required keys, types, the
phase alphabet, category membership, timestamp monotonic sanity, and
begin/end balance — both keyed per ``(pid, tid)`` lane, so multi-tenant
traces (one pid per tenant) load cleanly in Chrome's trace viewer,
which renders each pid as its own process group.  Used by
``tests/test_telemetry.py`` and the CI trace-smoke job via
``repro trace``.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.telemetry.tracer import CATEGORIES

#: Human/machine-readable schema description (also rendered in DESIGN.md).
TRACE_SCHEMA = {
    "schema": "carat.trace.v1",
    "required": ["name", "cat", "ph", "ts", "pid", "tid"],
    "optional": ["args", "s"],
    "types": {
        "name": "str",
        "cat": "str",
        "ph": "str",
        "ts": "int",
        "pid": "int",
        "tid": "int",
        "args": "object",
        "s": "str",
    },
    "ph": ["B", "E", "i", "C"],
    "cat": list(CATEGORIES),
}

_REQUIRED = tuple(TRACE_SCHEMA["required"])
_ALLOWED_KEYS = frozenset(_REQUIRED) | frozenset(TRACE_SCHEMA["optional"])
_PHASES = frozenset(TRACE_SCHEMA["ph"])
_CATS = frozenset(TRACE_SCHEMA["cat"])


def validate_events(events: Iterable[dict]) -> List[str]:
    """Validate decoded event dicts; returns a list of error strings
    (empty list = valid).  Checks structure, then cross-event invariants:
    non-decreasing timestamps and balanced B/E nesting, each keyed per
    ``(pid, tid)`` lane (Chrome's trace viewer nests spans per pid/tid
    pair, so a multi-tenant trace must hold these per tenant)."""
    errors: List[str] = []
    last_ts: dict = {}
    stacks: dict = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in _REQUIRED if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        unknown = sorted(set(event) - _ALLOWED_KEYS)
        if unknown:
            errors.append(f"{where}: unknown keys {unknown}")
        name, cat, ph = event["name"], event["cat"], event["ph"]
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: name must be a non-empty string")
        if not isinstance(cat, str) or cat not in _CATS:
            errors.append(f"{where}: unknown category {cat!r}")
        if ph not in _PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("ts", "pid", "tid"):
            if not isinstance(event[key], int) or isinstance(event[key], bool):
                errors.append(f"{where}: {key} must be an integer")
        if isinstance(event.get("ts"), int) and event["ts"] < 0:
            errors.append(f"{where}: negative timestamp {event['ts']}")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args must be an object")
        tid = event.get("tid")
        pid = event.get("pid")
        ts = event.get("ts")
        if isinstance(tid, int) and isinstance(pid, int) and isinstance(ts, int):
            lane = (pid, tid)
            if lane in last_ts and ts < last_ts[lane]:
                errors.append(
                    f"{where}: timestamp {ts} precedes {last_ts[lane]} "
                    f"on pid {pid} tid {tid}"
                )
            last_ts[lane] = ts
            stack = stacks.setdefault(lane, [])
            if ph == "B":
                stack.append((name, index))
            elif ph == "E":
                if not stack:
                    errors.append(f"{where}: end {name!r} with no open span")
                else:
                    open_name, open_index = stack.pop()
                    if open_name != name:
                        errors.append(
                            f"{where}: end {name!r} closes span "
                            f"{open_name!r} opened at event {open_index}"
                        )
    for (pid, tid), stack in stacks.items():
        for open_name, open_index in stack:
            errors.append(
                f"unclosed span {open_name!r} "
                f"(event {open_index}, pid {pid}, tid {tid})"
            )
    return errors


def validate_jsonl(path) -> List[str]:
    """Validate a JSONL trace file; returns error strings (empty = valid)."""
    events: List[dict] = []
    errors: List[str] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
    return errors + validate_events(events)
