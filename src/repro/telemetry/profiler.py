"""Cycle-attributed profiling: where did the simulated cycles go?

``InterpStats`` already *splits* cycle spend (guard, tracking,
translation, page-fault, tier counters alongside the total), but only as
run-wide sums.  The :class:`CycleProfiler` turns those counters into an
attribution: per **category**, per **function**, and — for guard spend —
per **allocation site**.

The mechanism is delta capture.  Around every executed instruction the
engine snapshots the six cycle counters and hands the profiler the
deltas afterwards; the residue ``total - guard - tracking - mmu_tlb -
page_fault - tier`` is app compute by definition.  Because every bucket
is a difference of the same counters that form ``InterpStats.cycles``,
the buckets sum to the total **exactly**, on both engines — that
reconciliation is asserted by ``benchmarks/test_telemetry_overhead.py``
for every workload in the suite.

Cycles charged to the interpreter *between* instructions (kernel-driven
page moves at safepoints, pre-run scatter) cannot be seen by delta
capture; :meth:`CycleProfiler.finish` sweeps that remainder into the
``patching`` bucket, except what the policy engine explicitly attributes
to ``policy`` via :meth:`attribute_external`.  Plain workloads therefore
show ``patching == policy == 0``.

Attachment is by instance-attribute interposition only — the reference
engine's ``_execute`` and the runtime's guard/tracking entry points are
wrapped on the *instances*, the fast engine switches to a mirrored
profiled loop — so an unprofiled run executes literally the same code as
before this module existed, and no profiler path ever charges a cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Bucket order (fixed — reports and tests index by name, not position).
PROFILE_CATEGORIES = (
    "app",         # residue: compute not attributed below
    "guard",       # carat guard checks (InterpStats.guard_cycles)
    "tracking",    # allocation/escape tracking (tracking_cycles)
    "mmu_tlb",     # traditional translation (translation_cycles)
    "page_fault",  # fault handling (page_fault_cycles)
    "tier",        # tiered-memory access premium (tier_cycles)
    "policy",      # safepoint cycles the policy engine claimed
    "patching",    # remaining safepoint/pre-run cycles (move protocol)
)

#: Index layout of the per-function accumulator rows.
_APP, _GUARD, _TRACK, _MMU, _FAULT, _TIER, _INSTS = range(7)


class CycleProfiler:
    """Delta-capture profiler over ``InterpStats``' cycle counters."""

    def __init__(self, pid: int = 0) -> None:
        #: Owning tenant's PID (the trace events' ``pid`` lane convention):
        #: a multi-tenant scheduler builds one profiler per tenant and
        #: stamps it, so every bucket in ``to_dict`` names its owner.
        #: Single-process runs leave it at 0.
        self.pid = pid
        #: category -> cycles (instruction-attributed + external).
        self.buckets: Dict[str, int] = {c: 0 for c in PROFILE_CATEGORIES}
        #: function name -> 7-slot accumulator row (see _APP.._INSTS).
        self._functions: Dict[str, List[int]] = {}
        #: id(Allocation) -> site label (set by the on_alloc wrapper).
        self._alloc_sites: Dict[int, str] = {}
        #: site label -> [guard checks, guard cycles].
        self._sites: Dict[str, List[int]] = {}
        self.current_function: Optional[str] = None
        self.instructions = 0
        #: Sum of instruction-attributed cycles (for the finish sweep).
        self._accounted = 0
        self._finished = False
        self.total_cycles = 0

    # ------------------------------------------------------------------
    # Per-instruction delta capture (both engines call these)
    # ------------------------------------------------------------------

    @staticmethod
    def snap(stats):
        """Snapshot the six cycle counters before an instruction."""
        return (
            stats.cycles,
            stats.guard_cycles,
            stats.tracking_cycles,
            stats.translation_cycles,
            stats.page_fault_cycles,
            stats.tier_cycles,
        )

    def account(self, function_name: str, stats, snap) -> None:
        """Attribute one instruction's cycle deltas.  Called in a
        ``finally`` so faulting instructions still reconcile."""
        total = stats.cycles - snap[0]
        guard = stats.guard_cycles - snap[1]
        track = stats.tracking_cycles - snap[2]
        mmu = stats.translation_cycles - snap[3]
        fault = stats.page_fault_cycles - snap[4]
        tier = stats.tier_cycles - snap[5]
        app = total - guard - track - mmu - fault - tier
        buckets = self.buckets
        buckets["app"] += app
        buckets["guard"] += guard
        buckets["tracking"] += track
        buckets["mmu_tlb"] += mmu
        buckets["page_fault"] += fault
        buckets["tier"] += tier
        self._accounted += total
        self.instructions += 1
        row = self._functions.get(function_name)
        if row is None:
            row = [0, 0, 0, 0, 0, 0, 0]
            self._functions[function_name] = row
        row[_APP] += app
        row[_GUARD] += guard
        row[_TRACK] += track
        row[_MMU] += mmu
        row[_FAULT] += fault
        row[_TIER] += tier
        row[_INSTS] += 1

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, interpreter) -> None:
        """Interpose on an interpreter (either engine) and its runtime.

        Adopts the interpreter's process PID when the profiler was not
        already stamped, so per-tenant profiles label themselves.

        Everything installed here is an *instance* attribute shadowing a
        class method — detaching is just never attaching; no class or
        module state is touched, so concurrent unprofiled interpreters
        are unaffected.
        """
        interpreter.profiler = self  # the fast engine's loop checks this
        if not self.pid:
            self.pid = interpreter.process.pid
        profiler = self
        execute = interpreter._execute  # bound reference method

        def profiled_execute(frame, inst):
            name = frame.function.name
            profiler.current_function = name
            stats = interpreter.stats
            before = profiler.snap(stats)
            try:
                execute(frame, inst)
            finally:
                profiler.account(name, stats, before)

        interpreter._execute = profiled_execute
        runtime = interpreter.process.runtime
        if runtime is not None:
            self._attach_runtime(runtime)

    def _attach_runtime(self, runtime) -> None:
        profiler = self
        table = runtime.table
        guard_access = runtime.guard_access
        guard_range = runtime.guard_range
        guard_call = runtime.guard_call
        on_alloc = runtime.on_alloc

        def _attribute(address: int, cycles: int) -> None:
            allocation = table.find_containing(address)
            if allocation is None:
                label = "<unmapped>"
            else:
                label = profiler._alloc_sites.get(id(allocation))
                if label is None:
                    label = f"<{allocation.kind}>"
            site = profiler._sites.get(label)
            if site is None:
                site = [0, 0]
                profiler._sites[label] = site
            site[0] += 1
            site[1] += cycles

        def profiled_guard_access(address, size, access, cell=None):
            cycles = guard_access(address, size, access, cell)
            _attribute(address, cycles)
            return cycles

        def profiled_guard_range(address, length, access="read", cell=None):
            cycles = guard_range(address, length, access, cell)
            _attribute(address, cycles)
            return cycles

        def profiled_guard_call(stack_pointer, frame_size, cell=None):
            cycles = guard_call(stack_pointer, frame_size, cell)
            _attribute(stack_pointer - frame_size, cycles)
            return cycles

        def profiled_on_alloc(address, size, kind="heap"):
            allocation = on_alloc(address, size, kind)
            key = id(allocation)
            if key not in profiler._alloc_sites:
                where = profiler.current_function or "<setup>"
                profiler._alloc_sites[key] = f"{where}:{allocation.kind}"
            return allocation

        runtime.guard_access = profiled_guard_access
        runtime.guard_range = profiled_guard_range
        runtime.guard_call = profiled_guard_call
        runtime.on_alloc = profiled_on_alloc

    # ------------------------------------------------------------------
    # External attribution and the finish sweep
    # ------------------------------------------------------------------

    def attribute_external(self, category: str, cycles: int) -> None:
        """Claim interpreter cycles charged outside instruction execution
        (the policy engine labels its epochs' spend this way)."""
        if category not in ("policy", "patching"):
            raise ValueError(f"external category must be policy/patching, not {category!r}")
        self.buckets[category] += cycles
        self._accounted += cycles

    def finish(self, stats) -> None:
        """Close the books: sweep unattributed interpreter cycles (moves
        charged at safepoints or before the first instruction) into
        ``patching`` so the buckets sum exactly to ``stats.cycles``."""
        if self._finished:
            return
        self._finished = True
        self.total_cycles = stats.cycles
        remainder = stats.cycles - self._accounted
        self.buckets["patching"] += remainder
        self._accounted += remainder

    def assert_reconciles(self, stats) -> None:
        """Raise unless the buckets sum exactly to ``stats.cycles``."""
        total = sum(self.buckets.values())
        if total != stats.cycles:
            raise AssertionError(
                f"profile buckets sum to {total}, InterpStats.cycles is "
                f"{stats.cycles} (drift {total - stats.cycles:+d})"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def functions(self) -> Dict[str, dict]:
        out = {}
        for name, row in sorted(
            self._functions.items(), key=lambda kv: -sum(kv[1][:_INSTS])
        ):
            out[name] = {
                "app": row[_APP],
                "guard": row[_GUARD],
                "tracking": row[_TRACK],
                "mmu_tlb": row[_MMU],
                "page_fault": row[_FAULT],
                "tier": row[_TIER],
                "cycles": sum(row[:_INSTS]),
                "instructions": row[_INSTS],
            }
        return out

    def sites(self) -> Dict[str, dict]:
        return {
            label: {"guards": site[0], "guard_cycles": site[1]}
            for label, site in sorted(
                self._sites.items(), key=lambda kv: -kv[1][1]
            )
        }

    def to_dict(self) -> dict:
        return {
            "schema": "carat.profile.v1",
            "pid": self.pid,
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "buckets": dict(self.buckets),
            "functions": self.functions(),
            "sites": self.sites(),
        }

    def report(self) -> str:
        """A human-readable bucket/function/site table."""
        lines = []
        total = self.total_cycles or 1
        lines.append(f"{'bucket':<12} {'cycles':>14} {'share':>8}")
        for category in PROFILE_CATEGORIES:
            cycles = self.buckets[category]
            if not cycles:
                continue
            lines.append(
                f"{category:<12} {cycles:>14,} {100.0 * cycles / total:>7.2f}%"
            )
        lines.append(f"{'total':<12} {self.total_cycles:>14,} {'100.00%':>8}")
        functions = self.functions()
        if functions:
            lines.append("")
            lines.append(
                f"{'function':<24} {'cycles':>14} {'guard':>12} {'insts':>12}"
            )
            for name, row in list(functions.items())[:12]:
                lines.append(
                    f"@{name:<23} {row['cycles']:>14,} "
                    f"{row['guard']:>12,} {row['instructions']:>12,}"
                )
        sites = self.sites()
        if sites:
            lines.append("")
            lines.append(f"{'allocation site':<28} {'guards':>12} {'cycles':>14}")
            for label, site in list(sites.items())[:12]:
                lines.append(
                    f"{label:<28} {site['guards']:>12,} "
                    f"{site['guard_cycles']:>14,}"
                )
        return "\n".join(lines)
