"""The structured event tracer: spans, instants, counters.

One :class:`Tracer` is a bounded in-memory buffer of
:class:`TraceEvent` records.  Every layer that can narrate itself —
compiler passes, guard checks, Figure-8 protocol steps, policy epochs,
retry/rollback/degradation — emits into whatever tracer is attached to
it; no tracer attached means no work beyond an ``is not None`` test.

Timestamps are *simulated cycles* once a machine clock is attached
(:meth:`Tracer.set_clock` — the session points it at
``interpreter.stats.cycles``); before that (e.g. during compilation)
they fall back to a monotonic logical sequence.  The tracer never
charges cycles to any stats object, so enabling it cannot perturb a
single measured number.

Exports:

* :meth:`Tracer.write_jsonl` — one JSON object per line, validated by
  :mod:`repro.telemetry.schema`;
* :meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome_trace` — the
  Chrome ``trace_event`` format (load in ``chrome://tracing`` or
  Perfetto).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

#: Event phases (a subset of the Chrome trace_event phases).
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: Known event categories, one per emitting layer.
CATEGORIES = (
    "compiler",    # pass begin/end with IR deltas
    "guard",       # guard check hit/miss/fault
    "trace",       # trace-tier compiles, side exits, respecializations
    "tracking",    # allocation/escape tracking
    "protocol",    # Figure-8 steps 1-12
    "policy",      # policy-engine epochs
    "resilience",  # retry / rollback / degradation
    "kernel",      # loads, faults, change requests
    "session",     # run lifecycle
    "metrics",     # periodic counter samples
)

#: Detail levels: ``normal`` keeps per-event volume bounded by run
#: structure (passes, protocol steps, epochs, faults, counter samples);
#: ``fine`` additionally emits one instant per guard check and per
#: tracking callback — only sane for small programs.
DETAIL_LEVELS = ("normal", "fine")


class TraceEvent:
    """One trace record; ``to_dict`` yields the JSONL/Chrome object."""

    __slots__ = ("name", "cat", "ph", "ts", "pid", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: int,
        pid: int = 0,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.pid = pid
        self.tid = tid
        self.args = args

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args is not None:
            out["args"] = self.args
        if self.ph == PH_INSTANT:
            out["s"] = "t"  # instant scope: thread
        return out


class Tracer:
    """A bounded, append-only event buffer with a pluggable clock."""

    def __init__(self, detail: str = "normal", max_events: int = 500_000) -> None:
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"unknown trace detail {detail!r} (choose from {DETAIL_LEVELS})"
            )
        self.detail = detail
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        #: Events discarded after the buffer filled (reported, not silent).
        self.dropped = 0
        #: The PID lane events land in (the ``tid`` convention, one level
        #: up): a multi-tenant scheduler sets this to the running tenant's
        #: PID around each quantum so every event any layer emits —
        #: protocol steps, policy epochs, counters — is stamped with its
        #: owning tenant.  Single-process runs leave it at 0.
        self.current_pid = 0
        self._clock: Optional[Callable[[], int]] = None
        self._clock_offset = 0
        self._seq = 0
        self._last_ts = 0
        self._depth: Dict[int, int] = {}

    # -- clock -----------------------------------------------------------

    @property
    def fine(self) -> bool:
        return self.detail == "fine"

    def set_clock(self, clock: Optional[Callable[[], int]]) -> None:
        """Attach the timestamp source (e.g. ``lambda: interp.stats.cycles``).
        ``None`` reverts to the logical sequence.  Timestamps stay
        monotonic across the handoff: the new clock is offset past the
        last emitted timestamp (compile-time events use the logical
        sequence, run-time events cycles — one axis, no reordering)."""
        self._clock = clock
        if clock is not None:
            self._clock_offset = self._last_ts - clock()
        else:
            self._seq = max(self._seq, self._last_ts)

    def now(self) -> int:
        if self._clock is not None:
            ts = self._clock() + self._clock_offset
        else:
            ts = self._seq
        if ts < self._last_ts:
            ts = self._last_ts  # clamp a clock that moved backwards
        self._last_ts = ts
        return ts

    # -- emission --------------------------------------------------------

    def _emit(
        self,
        name: str,
        cat: str,
        ph: str,
        args: Optional[dict],
        tid: int,
        pid: Optional[int] = None,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self._seq += 1
        owner = self.current_pid if pid is None else pid
        self.events.append(
            TraceEvent(name, cat, ph, self.now(), owner, tid, args)
        )

    def instant(
        self,
        name: str,
        cat: str,
        args: Optional[dict] = None,
        tid: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        self._emit(name, cat, PH_INSTANT, args, tid, pid)

    def begin(
        self,
        name: str,
        cat: str,
        args: Optional[dict] = None,
        tid: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        self._depth[tid] = self._depth.get(tid, 0) + 1
        self._emit(name, cat, PH_BEGIN, args, tid, pid)

    def end(
        self,
        name: str,
        cat: str,
        args: Optional[dict] = None,
        tid: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        self._depth[tid] = max(0, self._depth.get(tid, 0) - 1)
        self._emit(name, cat, PH_END, args, tid, pid)

    def counter(
        self,
        name: str,
        values: Dict[str, int],
        tid: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        """A counter sample: ``values`` become the tracked series."""
        self._emit(name, "metrics", PH_COUNTER, dict(values), tid, pid)

    @contextmanager
    def span(
        self, name: str, cat: str, args: Optional[dict] = None, tid: int = 0
    ):
        """``with tracer.span(...) as end_args:`` — mutate ``end_args`` to
        attach results to the closing event.  The end event is emitted
        even when the body raises, keeping begin/end balanced."""
        end_args: dict = {}
        self.begin(name, cat, args, tid)
        try:
            yield end_args
        finally:
            self.end(name, cat, end_args or None, tid)

    # -- export ----------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        for event in self.events:
            yield json.dumps(event.to_dict(), sort_keys=True)

    def to_jsonl(self) -> str:
        return "\n".join(self.jsonl_lines()) + ("\n" if self.events else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")

    def chrome_trace(self) -> dict:
        return {
            "traceEvents": [event.to_dict() for event in self.events],
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated-cycles",
                "dropped_events": self.dropped,
            },
        }

    def write_chrome_trace(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")

    # -- introspection ---------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events discarded after the bounded buffer filled — the
        trace-loss figure long soak runs report instead of silently
        truncating (``--stats``, run snapshots, soak reports)."""
        return self.dropped

    def summary(self) -> Dict[str, int]:
        """Event counts per category (plus total/dropped)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        counts["total"] = len(self.events)
        if self.dropped:
            counts["dropped"] = self.dropped
        return counts

    def __len__(self) -> int:
        return len(self.events)
