"""The :class:`PolicyEngine` facade: epochs, budgets, and accounting.

The engine owns the policy loop's clockwork.  It chains onto the
interpreter's tick hook (the safepoint callback that fires every
``tick_interval`` instructions) and forwards the program's elapsed
cycles into :meth:`Kernel.advance_clock`; the kernel calls back into
:meth:`PolicyEngine.on_clock`, which fires an *epoch* every
``epoch_cycles`` of program time.  Each epoch:

1. folds the heat tracker's sample window into decayed scores,
2. gives the compaction daemon and tiering balancer a fresh
   :class:`EpochBudget` of ``budget_cycles`` to spend on moves,
3. records fragmentation, hot-tier share, and spend into
   :class:`PolicyStats`.

Because every move is gated on an upper-bound estimate against the
shared budget, ``PolicyStats.budgets_respected`` is an invariant, not a
hope — the benchmark asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.policy.fragmentation import assess_fragmentation
from repro.policy.heat import HeatTracker
from repro.policy.moves import EpochBudget

__all__ = ["EpochBudget", "PolicyEngine", "PolicyStats"]


@dataclass
class PolicyStats:
    """Counters the policy engine maintains across its lifetime."""

    budget_cycles: int = 0
    epochs: int = 0
    compaction_moves: int = 0
    promotions: int = 0
    demotions: int = 0
    moves_skipped_budget: int = 0
    move_cycles: int = 0
    budget_overruns: int = 0
    #: Epochs spent idle because the DegradationManager held the engine
    #: in post-failure cooldown (heat still decays; no moves are planned).
    degraded_epochs: int = 0
    #: Per-epoch cycle spend, post-epoch fragmentation (EFI over the
    #: whole allocator), and the share of *that epoch's* accesses that
    #: hit the fast tier (the convergence signal for tiering).
    epoch_move_cycles: List[int] = field(default_factory=list)
    frag_history: List[float] = field(default_factory=list)
    hot_share_history: List[float] = field(default_factory=list)

    @property
    def total_moves(self) -> int:
        return self.compaction_moves + self.promotions + self.demotions

    @property
    def budgets_respected(self) -> bool:
        """True iff no epoch ever spent past its cycle budget."""
        return self.budget_overruns == 0 and all(
            spent <= self.budget_cycles for spent in self.epoch_move_cycles
        )

    def describe(self) -> str:
        frag = (
            f"{self.frag_history[0]:.3f} -> {self.frag_history[-1]:.3f}"
            if self.frag_history
            else "n/a"
        )
        hot = (
            f"{self.hot_share_history[-1]:.1%}" if self.hot_share_history else "n/a"
        )
        degraded = (
            f", {self.degraded_epochs} degraded" if self.degraded_epochs else ""
        )
        return (
            f"{self.epochs} epoch(s){degraded}: {self.compaction_moves} "
            f"compaction, {self.promotions} promote, {self.demotions} demote "
            f"({self.moves_skipped_budget} skipped on budget); "
            f"{self.move_cycles} move cycles, budgets "
            f"{'respected' if self.budgets_respected else 'OVERRUN'}; "
            f"EFI {frag}, hot-tier share {hot}"
        )


class PolicyEngine:
    """Drives heat tracking, compaction, and tiering off the kernel clock.

    ``compaction`` and ``tiering`` are pre-built
    :class:`~repro.policy.compaction.CompactionDaemon` /
    :class:`~repro.policy.tiering.TieringBalancer` instances (either may
    be ``None`` to disable that policy).  Call :meth:`attach` with the
    interpreter running the process before execution starts.
    """

    def __init__(
        self,
        kernel,
        process,
        epoch_cycles: int = 50_000,
        budget_cycles: int = 25_000,
        heat: Optional[HeatTracker] = None,
        compaction=None,
        tiering=None,
    ) -> None:
        if epoch_cycles < 1 or budget_cycles < 0:
            raise ValueError("epoch_cycles must be >= 1, budget_cycles >= 0")
        self.kernel = kernel
        self.process = process
        self.epoch_cycles = epoch_cycles
        self.budget_cycles = budget_cycles
        self.heat = heat if heat is not None else HeatTracker()
        self.compaction = compaction
        self.tiering = tiering
        # Compaction moves shift hot pages too: route our tracker in so
        # scores follow the bytes (the balancer already carries its own).
        if compaction is not None and compaction.heat is None:
            compaction.heat = self.heat
        self.interpreter = None
        self.stats = PolicyStats(budget_cycles=budget_cycles)
        self._next_epoch = kernel.clock_cycles + epoch_cycles
        self._last_cycles = 0
        self._last_fast = 0
        self._last_slow = 0
        self._in_epoch = False

    # -- wiring ------------------------------------------------------------------

    def attach(self, interpreter) -> None:
        """Hook the engine into an interpreter and its kernel: install
        the heat tracker's access probe, chain a tick hook that forwards
        cycle progress to :meth:`Kernel.advance_clock`, and register as
        the kernel's policy."""
        self.interpreter = interpreter
        self.heat.install(interpreter)
        self._last_cycles = interpreter.stats.cycles
        previous = interpreter.tick_hook

        def hook(interp) -> None:
            if previous is not None:
                previous(interp)
            delta = interp.stats.cycles - self._last_cycles
            self._last_cycles = interp.stats.cycles
            if delta > 0:
                self.kernel.advance_clock(delta)

        interpreter.tick_hook = hook
        self.kernel.attach_policy(self)

    # -- the epoch loop ----------------------------------------------------------

    def on_clock(self, kernel) -> None:
        """Kernel-clock callback: fire every epoch boundary we crossed
        (bounded, so a single slow stretch cannot spiral)."""
        if self._in_epoch:
            return
        fired = 0
        while kernel.clock_cycles >= self._next_epoch:
            self.run_epoch()
            self._next_epoch += self.epoch_cycles
            fired += 1
            if fired >= 4:
                # We fell far behind (e.g. a huge cycle jump); resync
                # instead of replaying every missed epoch.
                self._next_epoch = kernel.clock_cycles + self.epoch_cycles
                break

    def run_epoch(self) -> None:
        """One policy epoch: decay heat, then let each daemon spend from
        a shared move budget, then record the after-state."""
        self._in_epoch = True
        tracer = getattr(self.kernel, "tracer", None)
        interpreter = self.interpreter
        cycles_at_entry = (
            interpreter.stats.cycles if interpreter is not None else 0
        )
        try:
            stats = self.stats
            stats.epochs += 1
            if tracer is not None:
                tracer.begin(
                    "policy.epoch", "policy", {"epoch": stats.epochs}
                )
            self.heat.end_epoch()
            budget = EpochBudget(self.budget_cycles)
            # Degraded mode: after a move failure the DegradationManager
            # holds the engine in cooldown — heat still decays and the
            # after-state is still recorded, but no moves are planned.
            degradation = getattr(self.kernel, "degradation", None)
            if degradation is not None and degradation.consume_cooldown_epoch():
                stats.degraded_epochs += 1
            else:
                if self.compaction is not None:
                    self.compaction.run_epoch(budget, self.interpreter, stats)
                if self.tiering is not None:
                    self.tiering.run_epoch(budget, self.interpreter, stats)
            stats.move_cycles += budget.spent
            stats.moves_skipped_budget += budget.skipped
            stats.epoch_move_cycles.append(budget.spent)
            if budget.spent > budget.limit:
                stats.budget_overruns += 1
            stats.frag_history.append(
                assess_fragmentation(self.kernel.frames).external_fragmentation
            )
            if self.interpreter is not None and self.kernel.frames.tiered:
                istats = self.interpreter.stats
                fast = istats.fast_tier_accesses - self._last_fast
                slow = istats.slow_tier_accesses - self._last_slow
                self._last_fast = istats.fast_tier_accesses
                self._last_slow = istats.slow_tier_accesses
                if fast + slow:
                    stats.hot_share_history.append(fast / (fast + slow))
        finally:
            self._in_epoch = False
            if interpreter is not None:
                # Interpreter cycles charged during the epoch (rolled-up
                # move/patch costs) are policy spend: let an attached
                # profiler book them under its ``policy`` bucket instead
                # of the catch-all ``patching`` remainder.
                profiler = getattr(interpreter, "profiler", None)
                epoch_cycles = interpreter.stats.cycles - cycles_at_entry
                if profiler is not None and epoch_cycles > 0:
                    profiler.attribute_external("policy", epoch_cycles)
            if tracer is not None:
                tracer.end(
                    "policy.epoch", "policy",
                    {"budget_spent": self.stats.epoch_move_cycles[-1]
                     if self.stats.epoch_move_cycles else 0},
                )
