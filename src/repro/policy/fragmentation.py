"""Scoring physical-memory fragmentation (the compaction daemon's input).

Works over :class:`repro.kernel.physmem.FrameAllocator`'s bitmap
introspection (``free_runs`` / ``largest_free_run``).  The headline
metric is the *external fragmentation index*

    EFI = 1 - largest_free_run / free_frames

— 0 when all free space is one contiguous run (any fitting request
succeeds), approaching 1 when free space is shattered into slivers that
can satisfy only tiny contiguous requests.  This is the standard
"external fragmentation" formulation (cf. Zagieboylo et al.'s compaction
study in PAPERS.md); CARAT's cheap page moves are exactly the tool that
drives it back down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class FragmentationReport:
    """One snapshot of the frame allocator's free-space structure."""

    total_frames: int
    allocated_frames: int
    free_frames: int
    largest_free_run: int
    free_run_count: int
    #: Histogram of free-run lengths, bucketed by the largest power of
    #: two <= length (bucket 8 counts runs of 8..15 frames, etc.).
    run_histogram: Dict[int, int] = field(default_factory=dict)
    external_fragmentation: float = 0.0

    def describe(self) -> str:
        buckets = " ".join(
            f"{bucket}:{count}"
            for bucket, count in sorted(self.run_histogram.items())
        )
        return (
            f"frames {self.allocated_frames}/{self.total_frames} allocated, "
            f"{self.free_frames} free in {self.free_run_count} run(s), "
            f"largest run {self.largest_free_run}, "
            f"EFI {self.external_fragmentation:.3f} [{buckets}]"
        )


def _bucket(length: int) -> int:
    return 1 << (length.bit_length() - 1)


def assess_fragmentation(
    frames, tier: Optional[str] = None
) -> FragmentationReport:
    """Score a :class:`FrameAllocator`'s current bitmap.

    With ``tier`` set on a tiered allocator, only that tier's frame
    range is scored (the compaction daemon packs each tier separately so
    it never fights the tiering balancer's placement decisions).
    """
    runs: List[Tuple[int, int]] = frames.free_runs(tier)
    free = sum(length for _, length in runs)
    largest = max((length for _, length in runs), default=0)
    histogram: Dict[int, int] = {}
    for _, length in runs:
        bucket = _bucket(length)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    lo, hi = frames.tier_bounds(tier)
    span = hi - lo
    return FragmentationReport(
        total_frames=span,
        allocated_frames=span - free,
        free_frames=free,
        largest_free_run=largest,
        free_run_count=len(runs),
        run_histogram=histogram,
        external_fragmentation=(1.0 - largest / free) if free else 0.0,
    )
