"""Shared machinery for policy-initiated page moves: cycle budgets, cost
estimation, and the move-execution wrapper both daemons use.

The budget discipline: a policy may only issue a move when a
conservative *upper-bound* cost estimate still fits the epoch's
remaining cycle budget.  Because the estimate bounds the real cost from
above (every component of :class:`~repro.runtime.patching.MoveCost` is
estimated at its maximum), an epoch can never overspend — the benchmark
asserts exactly this through :class:`~repro.policy.engine.PolicyStats`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import MoveError
from repro.runtime.patching import MoveCost, MovePlan


class EpochBudget:
    """Cycles one epoch may spend on policy moves."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0
        #: Moves a policy wanted but could not afford this epoch.
        self.skipped = 0

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    def can_afford(self, estimate: int) -> bool:
        return self.spent + estimate <= self.limit

    def charge(self, cycles: int) -> None:
        self.spent += cycles


def snapshot_slot_count(interpreter) -> int:
    """Upper bound on patchable register slots a world stop would dump."""
    if interpreter is None or not interpreter.frames:
        return 0
    return sum(
        len(snapshot.pointer_slots)
        for snapshot in interpreter.register_snapshots()
    )


def estimate_move_cycles(
    kernel,
    runtime,
    plan: MovePlan,
    interpreter=None,
    thread_count: int = 1,
) -> int:
    """Upper-bound the total cycles :meth:`Kernel.request_page_move`
    would charge for executing ``plan``.

    Escapes are flushed first so the per-allocation escape sets are
    complete (the move itself flushes anyway); the patch estimate then
    counts *every* recorded escape even though only in-range ones get
    patched, and the register estimate counts every pointer slot.
    """
    costs = kernel.costs
    runtime.flush_escapes()
    escapes = sum(
        len(runtime.escapes.escapes_of(allocation))
        for allocation in plan.allocations
    )
    expand = (
        plan.expand_lookups * costs.expand_lookup
        + len(plan.allocations) * costs.expand_lookup // 4
    )
    patch = escapes * costs.patch_escape + len(plan.allocations) * 4
    registers = snapshot_slot_count(interpreter) * costs.patch_register
    move = int(costs.move_alloc_fixed + costs.move_per_byte * plan.length)
    stop = (
        0
        if runtime.is_stopped
        else costs.world_stop_per_thread * max(1, thread_count)
    )
    return stop + expand + patch + registers + move


def perform_move(
    kernel,
    process,
    interpreter,
    lo: int,
    page_count: int,
    destination: int,
    reason: str,
    heat=None,
    estimate: int = 0,
) -> Optional[Tuple[MovePlan, MoveCost, int]]:
    """Execute one policy move through the Figure 8 protocol, patching
    the interpreter's live registers and charging the move's cycles to
    the program (the program pays for kernel services, as in the
    Figure 9 experiment).  ``heat`` (a
    :class:`~repro.policy.heat.HeatTracker`) gets its per-page scores
    rekeyed to the destination so the moved bytes stay hot.

    With a :class:`~repro.resilience.degrade.DegradationManager`
    attached to the kernel, an exhausted move returns ``None`` (the
    failure is already recorded and the range quarantined; the rollback
    restored every structure *and released the destination range* — the
    transaction adopts a caller-claimed destination, so callers must not
    free it again).  Without one, the
    :class:`~repro.errors.MoveError` propagates.  Either way the program
    pays for the wasted attempts.

    With a :class:`~repro.resilience.movequeue.MoveQueue` attached to
    the kernel, the move is *deferred*: the request (destination already
    claimed by the caller) enqueues for incremental service and this
    returns ``(None, None, estimate)`` — the caller's own upper-bound
    estimate, so epoch budgets stay conservative (``estimate`` bounds
    what the queue will eventually charge for the move itself).  A
    refused enqueue behaves like a degraded move: ``None``, destination
    already released."""
    queue = getattr(kernel, "move_queue", None)
    if queue is not None:
        from repro.resilience.movequeue import MoveRequest

        accepted = queue.enqueue(
            MoveRequest(
                process=process,
                lo=lo,
                page_count=page_count,
                destination=destination,
                reason=reason,
                heat=heat,
                interpreter=interpreter,
                estimate=estimate,
            )
        )
        if not accepted:
            return None
        return None, None, estimate
    snapshots = None
    if interpreter is not None and interpreter.frames:
        snapshots = interpreter.register_snapshots()
    try:
        plan, cost, cycles = kernel.request_page_move(
            process,
            lo,
            page_count,
            register_snapshots=snapshots,
            destination=destination,
            reason=reason,
        )
    except MoveError as exc:
        if interpreter is not None and exc.cycles_wasted:
            interpreter.stats.cycles += exc.cycles_wasted
        if kernel.degradation is None:
            raise
        return None
    if snapshots is not None:
        interpreter.apply_snapshots(snapshots)
    if interpreter is not None:
        interpreter.stats.cycles += cycles
    if heat is not None:
        heat.rebase_range(plan.lo, plan.hi, destination - plan.lo)
    return plan, cost, cycles
