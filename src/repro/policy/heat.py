"""Per-page access-heat tracking (the policy engine's telemetry).

The interpreter exposes an *access probe* — a callback invoked with
``(address, size, access)`` for every load and store a CARAT process
performs.  :class:`HeatTracker` samples that stream (every Nth access,
modelling PEBS-style sampled profiling rather than full tracing),
accumulates per-page counts for the current epoch, and folds them into
exponentially decayed *heat scores* at each epoch boundary:

    score(page) <- score(page) * decay + samples_this_epoch(page)

Hot pages have high scores; pages untouched for a few epochs decay to
(and are pruned at) ~zero.  The tiering balancer consumes the scores to
pick promotion/demotion victims, aggregated to CARAT allocations since
moves happen at allocation granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.pagetable import PAGE_SHIFT

#: Scores below this are dropped at the end of an epoch — the page has
#: been cold long enough that keeping the entry only costs memory.
PRUNE_BELOW = 1e-3


class HeatTracker:
    """Sampled, decayed per-page access counts."""

    def __init__(self, sample_period: int = 1, decay: float = 0.5) -> None:
        if sample_period < 1:
            raise ValueError("sample period must be >= 1")
        if not (0.0 <= decay < 1.0):
            raise ValueError("decay must be in [0, 1)")
        self.sample_period = sample_period
        self.decay = decay
        #: page -> decayed heat score (epochs before the current one).
        self.scores: Dict[int, float] = {}
        #: page -> raw sample count in the current epoch.
        self.window: Dict[int, int] = {}
        self.accesses_seen = 0
        self.samples_taken = 0
        self.epochs = 0
        self._countdown = sample_period

    # -- telemetry intake --------------------------------------------------------

    def observe(self, address: int, size: int, access: str) -> None:
        """The interpreter's access probe.  Samples every Nth access and
        charges the sample to the page containing the *first* byte (a
        page-straddling access is one sample, like a PEBS record)."""
        self.accesses_seen += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.sample_period
        self.samples_taken += 1
        page = address >> PAGE_SHIFT
        self.window[page] = self.window.get(page, 0) + 1

    def install(self, interpreter) -> None:
        """Attach to an interpreter, chaining any probe already there."""
        previous = interpreter.access_probe
        if previous is None:
            interpreter.access_probe = self.observe
            return

        def chained(address: int, size: int, access: str) -> None:
            previous(address, size, access)
            self.observe(address, size, access)

        interpreter.access_probe = chained

    def rebase_range(self, lo: int, hi: int, delta: int) -> None:
        """Rekey heat for pages in ``[lo, hi)`` after those bytes moved
        by ``delta`` (page-aligned).  Without this, a policy move would
        strand an allocation's heat at its old physical address — the
        freshly promoted block would look stone cold and get evicted
        right back (the same reason the escape map rekeys on moves).
        """
        page_lo, page_hi = lo >> PAGE_SHIFT, hi >> PAGE_SHIFT
        page_delta = delta >> PAGE_SHIFT
        for mapping in (self.scores, self.window):
            moved = [page for page in mapping if page_lo <= page < page_hi]
            carried = {page: mapping.pop(page) for page in moved}
            for page, value in carried.items():
                target = page + page_delta
                mapping[target] = mapping.get(target, 0) + value

    # -- epoch boundary ---------------------------------------------------------

    def end_epoch(self) -> None:
        """Decay old scores, fold in the current window, prune the cold."""
        self.epochs += 1
        decayed: Dict[int, float] = {}
        for page, score in self.scores.items():
            score *= self.decay
            if score >= PRUNE_BELOW:
                decayed[page] = score
        for page, count in self.window.items():
            decayed[page] = decayed.get(page, 0.0) + count
        self.scores = decayed
        self.window.clear()

    # -- queries ----------------------------------------------------------------

    def score(self, page: int) -> float:
        """Current heat of a page, including the live (undecayed) window."""
        return self.scores.get(page, 0.0) + self.window.get(page, 0)

    def ranked(self) -> List[Tuple[int, float]]:
        """All known pages as (page, score), hottest first (ties by page
        number, for determinism)."""
        pages = set(self.scores) | set(self.window)
        return sorted(
            ((page, self.score(page)) for page in pages),
            key=lambda item: (-item[1], item[0]),
        )

    def hottest(self, n: Optional[int] = None) -> List[Tuple[int, float]]:
        ranked = self.ranked()
        return ranked if n is None else ranked[:n]

    def allocation_heat(self, table) -> List[Tuple[object, float]]:
        """Aggregate page scores to allocations (hottest first).

        ``table`` is the runtime's :class:`AllocationTable`; pages not
        covered by any allocation (kernel metadata, freed space) are
        skipped.  Moves happen at allocation granularity, so this is the
        ranking the tiering balancer actually acts on.
        """
        heat: Dict[int, float] = {}
        owner: Dict[int, object] = {}
        for page, score in self.ranked():
            if score <= 0.0:
                continue
            page_base = page << PAGE_SHIFT
            allocation = table.find_containing(page_base)
            if allocation is None:
                # Page start falls in untracked space (an allocation may
                # still start mid-page): charge the first overlapper.
                overlapping = table.overlapping(page_base, page_base + (1 << PAGE_SHIFT))
                if not overlapping:
                    continue
                allocation = overlapping[0]
            key = id(allocation)
            owner[key] = allocation
            heat[key] = heat.get(key, 0.0) + score
        return sorted(
            ((owner[key], total) for key, total in heat.items()),
            key=lambda item: (-item[1], item[0].address),
        )
