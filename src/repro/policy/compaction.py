"""The compaction daemon: budgeted defragmentation via CARAT page moves.

Linux's memory compactor migrates *movable* pages toward one end of a
zone so free space coalesces at the other end; under hardware paging
that migration costs page-table surgery and TLB shootdowns per page, and
pinned/unmovable pages (anything the kernel ever handed out a physical
address for) stall it.  Under CARAT every page of a tracked process is
movable — relocation is the Figure 8 patch-and-copy protocol — so the
same pack-to-one-end policy becomes cheap and universal.

The daemon packs *downward*: each step takes the highest-addressed
movable chunk (clipped to ``max_chunk_pages``, then expanded by the
runtime's move negotiation so allocations move whole) and relocates it
into the lowest free hole that lies entirely below it.  Free space
therefore consolidates at the top of memory (per tier, on a tiered
kernel) and the external-fragmentation index falls.  Work is bounded by
the epoch's cycle budget; a move is only issued when its upper-bound
cost estimate still fits.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import MoveError
from repro.kernel.pagetable import PAGE_SIZE
from repro.policy.fragmentation import assess_fragmentation
from repro.policy.moves import EpochBudget, estimate_move_cycles, perform_move

#: Safety valve: moves per epoch even if the budget would allow more.
MAX_MOVES_PER_EPOCH = 64


def scatter_capsule(kernel, process, chunk_pages: int = 4, interpreter=None) -> int:
    """Fragmentation adversary for experiments and demos: spray the
    process's capsule across physical memory in ``chunk_pages``-sized
    pieces, evenly spaced, so no large free run survives.

    A freshly loaded capsule is contiguous and heap frees never release
    frames, so a scenario that *needs* compaction has to be manufactured;
    this stands in for the long-lived mixed allocation/free traffic that
    fragments a real kernel's physical memory.  Returns the number of
    scatter moves performed.  Must run before the process starts
    executing (it moves pages with no live registers to patch); pass the
    ``interpreter`` if one is already constructed so its cached stack
    pointer gets resynced to the moved stack.
    """
    frames = kernel.frames
    total = frames.total_frames
    lo = min(region.base for region in process.regions)
    hi = max(region.end for region in process.regions)
    capsule_pages = (hi - lo) // PAGE_SIZE
    chunks = max(1, (capsule_pages + chunk_pages - 1) // chunk_pages)
    stride = (total - frames.reserved_low) // (chunks + 1)
    moves = 0
    chunk_hi = hi
    k = 0
    while chunk_hi > lo:
        chunk_lo = max(lo, chunk_hi - chunk_pages * PAGE_SIZE)
        plan = process.runtime.patcher.plan_move(chunk_lo, chunk_hi)
        cursor = total - (k + 1) * stride
        k += 1
        if cursor * PAGE_SIZE <= plan.hi:
            break  # ran out of headroom above the remaining capsule
        if not frames.alloc_at(cursor, plan.page_count):
            break
        try:
            kernel.request_page_move(
                process,
                plan.lo,
                plan.page_count,
                destination=cursor * PAGE_SIZE,
                reason="scatter",
            )
        except MoveError:
            # Rollback released the claimed destination; with degradation
            # attached the failure is recorded and scatter just stops
            # short (a partially scattered capsule is still a valid one).
            if kernel.degradation is None:
                raise
            break
        moves += 1
        chunk_hi = plan.lo  # the original range is free again; keep going
    if interpreter is not None:
        interpreter.resync_stack_pointer()
    return moves


class CompactionDaemon:
    """Plans and executes defragmentation for one CARAT process."""

    def __init__(
        self,
        kernel,
        process,
        target_fragmentation: float = 0.15,
        max_chunk_pages: int = 16,
        heat=None,
    ) -> None:
        if process.runtime is None or process.regions is None:
            raise ValueError("compaction requires a CARAT process")
        self.kernel = kernel
        self.process = process
        self.target_fragmentation = target_fragmentation
        self.max_chunk_pages = max_chunk_pages
        #: Optional HeatTracker whose scores follow the moved pages (the
        #: PolicyEngine wires its own tracker in here on construction).
        self.heat = heat
        self.moves_performed = 0

    # -- movable space ----------------------------------------------------------

    def movable_extents(
        self, tier: Optional[str] = None
    ) -> List[Tuple[int, int]]:
        """Maximal contiguous byte ranges covered by the process's region
        set (every CARAT page is movable), ascending, optionally clipped
        to one tier's address range."""
        lo_bound, hi_bound = 0, self.kernel.memory.size
        if tier is not None:
            frame_lo, frame_hi = self.kernel.frames.tier_bounds(tier)
            lo_bound, hi_bound = frame_lo * PAGE_SIZE, frame_hi * PAGE_SIZE
        extents: List[Tuple[int, int]] = []
        for region in sorted(self.process.regions, key=lambda r: r.base):
            base = max(region.base, lo_bound)
            end = min(region.end, hi_bound)
            if base >= end:
                continue
            if extents and extents[-1][1] == base:
                extents[-1] = (extents[-1][0], end)
            else:
                extents.append((base, end))
        return extents

    # -- one epoch of packing ----------------------------------------------------

    def run_epoch(self, budget: EpochBudget, interpreter=None, stats=None) -> int:
        """Pack each tier until fragmentation reaches the target, the
        budget runs out, or no productive move remains.  Returns the
        number of moves performed."""
        tiers: List[Optional[str]] = (
            ["fast", "slow"] if self.kernel.frames.tiered else [None]
        )
        moves = 0
        for tier in tiers:
            moves += self._pack_tier(tier, budget, interpreter, stats)
        return moves

    def _pack_tier(
        self, tier: Optional[str], budget: EpochBudget, interpreter, stats
    ) -> int:
        kernel = self.kernel
        frames = kernel.frames
        runtime = self.process.runtime
        moves = 0
        while moves < MAX_MOVES_PER_EPOCH:
            report = assess_fragmentation(frames, tier)
            if report.external_fragmentation <= self.target_fragmentation:
                break
            step = self._plan_step(tier)
            if step is None:
                break  # nothing productive left to move in this tier
            plan, hole_frame = step
            estimate = estimate_move_cycles(kernel, runtime, plan, interpreter)
            if not budget.can_afford(estimate):
                budget.skipped += 1
                break
            claimed = frames.alloc_at(hole_frame, plan.page_count)
            assert claimed, "compaction destination vanished mid-plan"
            result = perform_move(
                kernel,
                self.process,
                interpreter,
                plan.lo,
                plan.page_count,
                hole_frame * PAGE_SIZE,
                "policy-compaction",
                heat=self.heat,
                estimate=estimate,
            )
            if result is None:
                # Degraded: the move failed and its range is quarantined.
                # Rollback restored every structure and released the hole
                # we claimed (the transaction adopts the destination);
                # stop packing this tier for the epoch (the engine is in
                # cooldown now anyway).
                break
            _, _, cycles = result
            budget.charge(cycles)
            moves += 1
            self.moves_performed += 1
            if stats is not None:
                stats.compaction_moves += 1
        return moves

    def _plan_step(self, tier: Optional[str]):
        """The next packing move for a tier: the highest movable chunk
        that fits in a free hole entirely below it.  Returns
        (negotiated plan, destination start frame) or ``None``."""
        frames = self.kernel.frames
        patcher = self.process.runtime.patcher
        holes = frames.free_runs(tier)
        if not holes:
            return None
        degradation = self.kernel.degradation
        for extent_lo, extent_hi in reversed(self.movable_extents(tier)):
            chunk_hi = extent_hi
            chunk_lo = max(extent_lo, chunk_hi - self.max_chunk_pages * PAGE_SIZE)
            plan = patcher.plan_move(chunk_lo, chunk_hi)
            if degradation is not None and not degradation.allows(plan.lo, plan.hi):
                continue  # pinned (quarantined) range: try the next extent
            shares = self.kernel.shares
            if shares is not None and shares.range_shared(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # CoW-shared pages are pinned for policy moves
            queue = self.kernel.move_queue
            if queue is not None and queue.overlaps_pending(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # already queued for an incremental move
            for hole_start, hole_length in holes:
                if (
                    hole_length >= plan.page_count
                    and (hole_start + plan.page_count) * PAGE_SIZE <= plan.lo
                ):
                    return plan, hole_start
        return None
