"""The memory-policy engine: heat-tracked compaction and tiered placement.

CARAT's argument (Sections 1-2) is that cheap software address
translation unlocks the kernel memory services hardware paging makes
awkward — defragmentation, hot/cold placement, migration.  The kernel in
this repo has the *mechanism* (:meth:`repro.kernel.kernel.Kernel.request_page_move`);
this package supplies the *policies* that drive it:

* :mod:`repro.policy.heat` — per-page access-heat tracking with decay,
  fed by the interpreter's access probe;
* :mod:`repro.policy.fragmentation` — scoring of the frame allocator's
  bitmap (free-run histogram, external-fragmentation index);
* :mod:`repro.policy.compaction` — a budgeted defragmentation daemon
  that packs movable CARAT pages downward via page moves;
* :mod:`repro.policy.tiering` — a fast/slow tier balancer that promotes
  hot pages into near memory and demotes cold ones;
* :mod:`repro.policy.engine` — the :class:`PolicyEngine` facade wiring
  all of it into :meth:`Kernel.advance_clock` epochs.
"""

from repro.policy.compaction import CompactionDaemon, scatter_capsule
from repro.policy.engine import EpochBudget, PolicyEngine, PolicyStats
from repro.policy.fragmentation import FragmentationReport, assess_fragmentation
from repro.policy.heat import HeatTracker
from repro.policy.tiering import TieringBalancer

__all__ = [
    "CompactionDaemon",
    "EpochBudget",
    "FragmentationReport",
    "HeatTracker",
    "PolicyEngine",
    "PolicyStats",
    "TieringBalancer",
    "assess_fragmentation",
    "scatter_capsule",
]
