"""The tiering balancer: heat-driven placement across fast/slow memory.

A tiered kernel (``Kernel(..., fast_memory=...)``) splits physical
memory into a small *fast* tier (near memory — think on-package DRAM)
and a large *slow* tier (far memory — CXL-class capacity), with each
access to the slow tier paying ``CostModel.slow_tier_access`` extra
cycles.  New capsules land in the slow tier; the balancer then uses the
:class:`~repro.policy.heat.HeatTracker`'s decayed scores to *promote*
hot allocations into fast memory, and to *demote* colder residents when
— and only when — the fast tier is too full to admit something hotter.
Demotion-under-pressure (rather than on every cold score) is what keeps
the balancer from ping-ponging allocations between tiers as program
phases shift.  Every move runs through the same CARAT protocol
compaction uses and is budget-gated by the shared upper-bound cost
estimate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import OutOfMemoryError
from repro.kernel.pagetable import PAGE_SHIFT, PAGE_SIZE
from repro.policy.moves import EpochBudget, estimate_move_cycles, perform_move

#: Safety valve: moves per epoch even if the budget would allow more.
MAX_MOVES_PER_EPOCH = 32


class TieringBalancer:
    """Promotes hot allocations into fast memory, evicting colder ones."""

    def __init__(
        self,
        kernel,
        process,
        heat,
        hot_fraction: float = 0.05,
        max_allocation_pages: int = 16,
    ) -> None:
        if not kernel.frames.tiered:
            raise ValueError("tiering requires a kernel built with fast_memory")
        if process.runtime is None:
            raise ValueError("tiering requires a CARAT process")
        if not (0.0 < hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in (0, 1]")
        self.kernel = kernel
        self.process = process
        self.heat = heat
        self.hot_fraction = hot_fraction
        self.max_allocation_pages = max_allocation_pages
        self.promotions = 0
        self.demotions = 0

    # -- classification ----------------------------------------------------------

    def classify(self) -> Tuple[List[Tuple[object, float]], List[Tuple[object, float]]]:
        """Split the process's allocations by tier and heat.

        Returns ``(candidates, residents)``: slow-tier allocations whose
        share of total heat reaches ``hot_fraction`` (hottest first —
        these want promoting), and *all* fast-tier allocations with
        their scores, coldest first (the eviction order if the fast tier
        fills up).
        """
        table = self.process.runtime.table
        ranked = self.heat.allocation_heat(table)
        total = sum(score for _, score in ranked) or 1.0
        scored = {id(allocation): score for allocation, score in ranked}
        tier_of = self.kernel.memory.tier_of
        candidates = [
            (allocation, score)
            for allocation, score in ranked
            if tier_of(allocation.address) == "slow"
            and score / total >= self.hot_fraction
        ]
        residents = sorted(
            (
                (allocation, scored.get(id(allocation), 0.0))
                for allocation in table
                if tier_of(allocation.address) == "fast"
            ),
            key=lambda item: (item[1], item[0].address),
        )
        return candidates, residents

    # -- one epoch of balancing --------------------------------------------------

    def run_epoch(self, budget: EpochBudget, interpreter=None, stats=None) -> int:
        """Promote this epoch's hot set, demoting colder residents only
        when the fast tier has no room.  Returns moves performed."""
        candidates, residents = self.classify()
        moves = 0
        for allocation, _ in candidates:
            if moves >= MAX_MOVES_PER_EPOCH:
                break
            # An earlier move's expansion may have dragged this neighbour
            # into the fast tier already.
            if self.kernel.memory.tier_of(allocation.address) == "fast":
                continue
            plan = self._plan_for(allocation)
            if plan.page_count > self.max_allocation_pages:
                continue  # too big to migrate profitably
            degradation = self.kernel.degradation
            if degradation is not None and not degradation.allows(plan.lo, plan.hi):
                continue  # pinned (quarantined) after repeated failures
            shares = self.kernel.shares
            if shares is not None and shares.range_shared(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # CoW-shared pages are pinned for policy moves
            queue = self.kernel.move_queue
            if queue is not None and queue.overlaps_pending(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # already queued for an incremental move
            # Moves happen at plan (page-range) granularity, so heat
            # comparisons must too: a cold allocation sharing a page
            # with a hot one is NOT a cheap thing to move.
            score = self._range_heat(plan.lo, plan.hi)
            outcome = self._promote(
                plan, score, residents, budget, interpreter, stats
            )
            if outcome is None:
                break  # out of budget or out of evictable space
            moves += outcome
        return moves

    def _plan_for(self, allocation):
        page_lo = allocation.address & ~(PAGE_SIZE - 1)
        page_hi = (allocation.end + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        return self.process.runtime.patcher.plan_move(page_lo, page_hi)

    def _range_heat(self, lo: int, hi: int) -> float:
        """Total heat of the pages in ``[lo, hi)`` (page-aligned)."""
        return sum(
            self.heat.score(page)
            for page in range(lo >> PAGE_SHIFT, hi >> PAGE_SHIFT)
        )

    def _promote(
        self,
        plan,
        score: float,
        residents: List[Tuple[object, float]],
        budget: EpochBudget,
        interpreter,
        stats,
    ) -> Optional[int]:
        """Move ``plan`` into the fast tier, evicting colder residents as
        needed.  Returns moves performed, or ``None`` to stop the epoch
        (budget exhausted / no way to make room)."""
        kernel = self.kernel
        frames = kernel.frames
        runtime = self.process.runtime
        moves = 0
        while True:
            try:
                destination = frames.alloc_address(plan.page_count, tier="fast")
            except OutOfMemoryError:
                demoted = self._evict_one(
                    score, residents, budget, interpreter, stats
                )
                if demoted is None:
                    return None if moves == 0 else moves
                moves += demoted
                continue
            estimate = estimate_move_cycles(kernel, runtime, plan, interpreter)
            if not budget.can_afford(estimate):
                frames.free_address(destination, plan.page_count)
                budget.skipped += 1
                return None
            result = perform_move(
                kernel,
                self.process,
                interpreter,
                plan.lo,
                plan.page_count,
                destination,
                "policy-promote",
                heat=self.heat,
                estimate=estimate,
            )
            if result is None:
                # Degraded: the range is quarantined and rollback already
                # released the fast-tier destination; stop the epoch.
                return None if moves == 0 else moves
            _, _, cycles = result
            budget.charge(cycles)
            self.promotions += 1
            if stats is not None:
                stats.promotions += 1
            return moves + 1

    def demote_coldest(
        self,
        residents: List[Tuple[object, float]],
        budget: EpochBudget,
        interpreter=None,
        stats=None,
    ) -> Optional[int]:
        """Public pressure-relief entry point: demote the coldest
        evictable fast-tier resident unconditionally (no incoming-heat
        comparison).  Returns 1 on success, ``None`` if nothing could be
        evicted within ``budget``."""
        return self._evict_one(
            float("inf"), residents, budget, interpreter, stats
        )

    def _evict_one(
        self,
        incoming_score: float,
        residents: List[Tuple[object, float]],
        budget: EpochBudget,
        interpreter,
        stats,
    ) -> Optional[int]:
        """Demote the fast-tier resident whose *move plan* carries the
        least heat, provided it is strictly colder than the incoming
        range.  Returns 1 on success, ``None`` if nothing evictable (or
        the budget cannot cover the demotion)."""
        kernel = self.kernel
        frames = kernel.frames
        runtime = self.process.runtime
        best = None
        degradation = kernel.degradation
        for index, (victim, _) in enumerate(residents):
            if kernel.memory.tier_of(victim.address) != "fast":
                continue  # already moved (dragged by an earlier plan)
            plan = self._plan_for(victim)
            if plan.page_count > self.max_allocation_pages:
                continue
            if degradation is not None and not degradation.allows(plan.lo, plan.hi):
                continue  # pinned (quarantined) after repeated failures
            if kernel.shares is not None and kernel.shares.range_shared(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # CoW-shared pages are pinned for policy moves
            if kernel.move_queue is not None and kernel.move_queue.overlaps_pending(
                self.process.pid, plan.lo, plan.hi
            ):
                continue  # already queued for an incremental move
            plan_score = self._range_heat(plan.lo, plan.hi)
            if plan_score >= incoming_score:
                continue  # would carry out something at least as hot
            if best is None or plan_score < best[0]:
                best = (plan_score, index, plan)
        if best is None:
            return None  # everything evictable is at least as hot
        _, index, plan = best
        estimate = estimate_move_cycles(kernel, runtime, plan, interpreter)
        if not budget.can_afford(estimate):
            budget.skipped += 1
            return None
        try:
            destination = frames.alloc_address(plan.page_count, tier="slow")
        except OutOfMemoryError:
            return None  # slow tier full too; give up this epoch
        residents.pop(index)
        result = perform_move(
            kernel,
            self.process,
            interpreter,
            plan.lo,
            plan.page_count,
            destination,
            "policy-demote",
            heat=self.heat,
            estimate=estimate,
        )
        if result is None:
            # Degraded: the victim stays put (its range is quarantined)
            # and rollback already gave back the slow-tier range; stop
            # trying this epoch.
            return None
        _, _, cycles = result
        budget.charge(cycles)
        self.demotions += 1
        if stats is not None:
            stats.demotions += 1
        return 1

    # -- reporting ---------------------------------------------------------------

    def fast_tier_bytes_used(self) -> int:
        lo, hi = self.kernel.frames.tier_bounds("fast")
        free = self.kernel.frames.free_frames_in("fast")
        return ((hi - lo) - free) * PAGE_SIZE
