"""The cycle cost model.

All experiments report cycles from this model, calibrated to the figures
the paper reports for its testbeds (Section 3): a pagewalk averages ~47
cycles, an MPX bounds check is single-cycle, a compare-and-branch range
guard costs a handful of cycles plus register pressure, and a binary
search over N regions costs O(log N) probes of ~up to tens of cycles
(Figure 4 measures 10-1000 cycles over 1..10000 regions).

Keeping every constant in one dataclass makes the ablation benches able to
re-run experiments under different hardware assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math


@dataclass
class CostModel:
    """Every tunable cycle cost in one place; see module docstring."""

    # -- core execution -------------------------------------------------------
    #: Base cost of one IR instruction (ALU op, branch, etc).
    instruction: int = 1
    #: Extra cost of a memory access that hits the L1 cache.
    memory_access: int = 3
    #: Extra cost of a call/return pair (stack adjustment, branch).
    call: int = 2

    # -- traditional model (paging) --------------------------------------------
    #: L1 DTLB hit: free (folded into the memory pipeline).
    tlb_hit: int = 0
    #: L1 DTLB miss that hits the STLB.
    stlb_hit: int = 7
    #: Full pagewalk, the paper's measured average (47 cycles, up to 108).
    pagewalk: int = 47

    # -- CARAT guards (Figures 3 and 4) ------------------------------------------
    #: MPX-style bounds check: "a single cycle without register pressure".
    mpx_guard: int = 1
    #: Software compare-and-branch guard against one region: two compares,
    #: a branch, plus register pressure / spill pressure.
    range_guard_single: int = 4
    #: Cost of one probe (compare + branch) during a binary search.
    binary_search_probe: int = 6
    #: Cost of one if-tree level (predictable branch, prefetched compare).
    if_tree_level: int = 2
    #: Extra cost per if-tree level when the access pattern defeats the
    #: branch predictor (random accesses, Figure 4a vs 4b).
    if_tree_mispredict: int = 12

    # -- runtime tracking (Figure 7) --------------------------------------------
    #: Allocation Table insert/remove (red/black tree update).
    alloc_table_update: int = 40
    #: Recording one escape in the batched buffer.
    escape_record: int = 6

    # -- page movement (Table 3) ---------------------------------------------------
    #: Allocation Table lookup during page expansion.
    expand_lookup: int = 60
    #: Patching one escape (read, rebase, write).
    patch_escape: int = 12
    #: Patching one register (snapshot slot rewrite).
    patch_register: int = 9
    #: Copying one byte of page data (amortized, streaming copy).
    move_per_byte: float = 0.08
    #: Fixed cost of allocating the destination page(s).
    move_alloc_fixed: int = 800
    #: Signal delivery + world-stop barrier per thread.
    world_stop_per_thread: int = 500

    # -- tiered memory (policy engine) ------------------------------------------
    #: Extra cycles when a data access is served by the *fast* (near) tier
    #: of a tiered physical memory.  0: the fast tier is ordinary DRAM.
    fast_tier_access: int = 0
    #: Extra cycles when a data access is served by the *slow* (far /
    #: capacity) tier — CXL-class far memory at several times DRAM latency.
    slow_tier_access: int = 30

    def guard_cost(self, mechanism: str, num_regions: int, strided: bool = False) -> int:
        """Cycles for one guard evaluation.

        ``mechanism`` is 'mpx', 'binary_search', or 'if_tree'.  ``strided``
        marks predictable access patterns, which an if-tree exploits
        (Figure 4b) and a binary search cannot.
        """
        if num_regions <= 0:
            num_regions = 1
        depth = max(1, math.ceil(math.log2(num_regions + 1)))
        if mechanism == "mpx":
            if num_regions == 1:
                return self.mpx_guard
            # MPX covers one bounds register; extra regions fall back to
            # a software search after the first check misses.
            return self.mpx_guard + self.binary_search_probe * depth
        if mechanism == "binary_search":
            if num_regions == 1:
                return self.range_guard_single
            return self.binary_search_probe * depth
        if mechanism == "if_tree":
            per_level = self.if_tree_level
            if not strided:
                per_level += self.if_tree_mispredict
            return max(self.range_guard_single, per_level * depth)
        raise ValueError(f"unknown guard mechanism: {mechanism!r}")

    def tier_access_extra(self, tier: str) -> int:
        """Extra cycles for a data access served by ``tier`` ('fast' or
        'slow') of a tiered physical memory."""
        if tier == "fast":
            return self.fast_tier_access
        if tier == "slow":
            return self.slow_tier_access
        raise ValueError(f"unknown memory tier: {tier!r}")


#: The default model used by every experiment unless overridden.
DEFAULT_COSTS = CostModel()
