"""The fast execution engine: pre-compiled instruction dispatch.

The reference :class:`~repro.machine.interp.Interpreter` re-discovers
everything about an instruction on every tick: an isinstance chain picks
the opcode, ``_eval`` re-classifies each operand, and every guard walks
``RegionSet.find``.  This module removes that per-tick work without
changing a single observable number:

* each :class:`~repro.ir.module.BasicBlock` is compiled **once** into a
  list of per-instruction closures ("ops") with operands resolved at
  compile time — constants are captured, SSA values become direct
  ``frame.values`` slot reads, branch edges carry their phi parallel-copy
  pre-staged, and the opcode is dispatched by *which closure was built*,
  not by isinstance at run time.  The hottest instruction forms (integer
  and float arithmetic, compares, GEPs, loads/stores, guards) are
  specialized through small source templates compiled with ``exec`` so
  the operand reads, wrap arithmetic, and NaN checks are inline in the
  op itself rather than behind further calls;
* the compiled form is cached on the module (``Module.metadata``) and
  shared by every subsequent run of the same binary;
* every ``carat.guard.*`` call site gets a numbered
  :class:`~repro.runtime.runtime.GuardSiteCell` so the runtime's
  epoch-invalidated region cache can memoize the last region *per site*
  (cells live on the interpreter, never in the shared compiled code —
  a cached region is only trusted while the RegionSet identity **and**
  generation still match).

Parity is a hard contract, enforced by the differential tests: the fast
engine must produce bit-identical program output, memory, and exit codes
*and* semantically identical stats.  Every op therefore charges the
cost model in exactly the order ``Interpreter._execute`` does; the guard
cache changes wall-clock only, because
:meth:`~repro.runtime.regions.GuardMechanism.check_known` reproduces each
mechanism's cost/predictor state machine on a hit.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.carat.intrinsics import (
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
    TRACK_ALLOC,
    TRACK_ESCAPE,
    TRACK_FREE,
)
from repro.errors import InterpError, ProtectionFault
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    size_of,
    stride_of,
    struct_field_offset,
)
from repro.ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.machine.interp import ExitProgram, Interpreter, _Frame
from repro.runtime.runtime import GuardSiteCell
from repro.transform.simplify import fold_icmp, fold_int_binop

#: A compiled operand: ``getter(interp, frame.values) -> value``.
Getter = Callable[["FastInterpreter", Dict[int, Union[int, float]]], Union[int, float]]
#: A compiled instruction: ``op(interp, frame) -> None``.
Op = Callable[["FastInterpreter", "_FastFrame"], None]

_MASK64 = (1 << 64) - 1


class _FastFrame(_Frame):
    """A frame that also carries the current block's compiled ops,
    index-aligned with ``block.instructions`` so ``retry`` / snapshot
    machinery from the reference interpreter keeps working unchanged."""

    __slots__ = ("ops",)

    def __init__(self, function: Function, sp_on_entry: int) -> None:
        super().__init__(function, sp_on_entry)
        self.ops: List[Tuple[Op, bool]] = []


# ----------------------------------------------------------------------
# Operand compilation
# ----------------------------------------------------------------------


def _operand(value: Value) -> Getter:
    """Classify an operand once, at compile time (what ``_eval`` does per
    use), and return a minimal getter for it."""
    if isinstance(value, (ConstantInt, ConstantFloat)):
        constant = value.value
        return lambda interp, values: constant
    if isinstance(value, (Argument, Instruction)):
        key = id(value)
        name = value.name

        def read_slot(interp, values, _key=key, _name=name):
            try:
                return values[_key]
            except KeyError:
                raise InterpError(
                    f"use of undefined value %{_name} in "
                    f"@{interp.frames[-1].function.name}"
                ) from None

        return read_slot
    if isinstance(value, (ConstantNull, UndefValue)):
        return lambda interp, values: 0
    if isinstance(value, GlobalVariable):
        gname = value.name

        def read_global(interp, values, _name=gname):
            try:
                return interp.process.globals_map[_name]
            except KeyError:
                raise InterpError(f"global @{_name} was not loaded") from None

        return read_global

    # Aggregate constants and other oddities: the reference interpreter
    # faults when (and only when) such an operand is *evaluated* — keep
    # that, so dead blocks containing them still compile.
    rep = repr(value)

    def reject(interp, values, _rep=rep):
        raise InterpError(f"cannot evaluate operand {_rep}")

    return reject


_NOT_CONST = object()


def _slot_key(value: Value) -> Optional[int]:
    """Frame-slot id for SSA operands (arguments, instruction results)."""
    return id(value) if isinstance(value, (Argument, Instruction)) else None


def _const_of(value: Value):
    """Compile-time value of a constant operand, else ``_NOT_CONST``."""
    if isinstance(value, (ConstantInt, ConstantFloat)):
        return value.value
    if isinstance(value, (ConstantNull, UndefValue)):
        return 0
    return _NOT_CONST


def _raise_undefined(interp: "FastInterpreter", values, *operands: Value) -> None:
    """Slow path behind an inlined slot read's KeyError: report the first
    unset SSA operand, in evaluation order, with the reference wording."""
    for value in operands:
        if isinstance(value, (Argument, Instruction)) and id(value) not in values:
            raise InterpError(
                f"use of undefined value %{value.name} in "
                f"@{interp.frames[-1].function.name}"
            ) from None
    raise InterpError("undefined value in compiled op") from None


# ----------------------------------------------------------------------
# Source-template specialization
# ----------------------------------------------------------------------

_GEN_GLOBALS: Dict[str, object] = {"_raise_undefined": _raise_undefined}


def _gen(source: str, ns: Dict[str, object]) -> Op:
    """Compile one generated op.  ``ns`` holds the captured constants and
    slot keys the source refers to."""
    scope = dict(_GEN_GLOBALS)
    scope.update(ns)
    exec(compile(source, "<fastexec>", "exec"), scope)
    return scope["op"]


def _expr(value: Value, ns: Dict[str, object], tag: str) -> str:
    """An expression evaluating ``value`` inside a generated op (with
    ``interp`` and ``values`` in scope).  Slot reads are raw dict lookups;
    the template's KeyError handler reproduces the reference
    undefined-value error.  Getter-backed operands (globals, aggregate
    rejects) handle their own errors and never raise KeyError."""
    key = _slot_key(value)
    if key is not None:
        name = f"_k{tag}"
        ns[name] = key
        return f"values[{name}]"
    const = _const_of(value)
    if const is not _NOT_CONST:
        name = f"_c{tag}"
        ns[name] = const
        return name
    name = f"_g{tag}"
    ns[name] = _operand(value)
    return f"{name}(interp, values)"


# ----------------------------------------------------------------------
# Branch edges (phi parallel copy resolved at compile time)
# ----------------------------------------------------------------------


class _Edge:
    """One CFG edge: the target block with its phi moves pre-resolved for
    this specific source block, and the target's ops late-bound (blocks in
    a loop forward-reference each other)."""

    __slots__ = ("code", "target", "moves", "first_index", "ops")

    def __init__(self, code: "ModuleCode", source: BasicBlock, target: BasicBlock):
        self.code = code
        self.target = target
        self.moves: Tuple[Tuple[int, Getter], ...] = tuple(
            (id(phi), _operand(phi.incoming_for_block(source)))
            for phi in target.phis()
        )
        self.first_index = target.first_non_phi_index()
        self.ops: Optional[List[Tuple[Op, bool]]] = None

    def resolve(self) -> List[Tuple[Op, bool]]:
        ops = self.code.ops_by_block[id(self.target)]
        self.ops = ops
        return ops


def _edge_enter(edge: _Edge) -> Callable[["FastInterpreter", _FastFrame], None]:
    """Build the "take this edge" closure, specialized by phi-move count
    (loop latches almost always carry exactly one).  The phi parallel copy
    keeps the reference order: evaluate every incoming value first, then
    charge n instructions, then assign."""
    moves = edge.moves
    target = edge.target
    first_index = edge.first_index
    if not moves:

        def enter0(interp, frame):
            frame.prev_block = frame.block
            frame.block = target
            frame.index = first_index
            ops = edge.ops
            frame.ops = ops if ops is not None else edge.resolve()

        return enter0
    if len(moves) == 1:
        ((phi_key, get_in),) = moves

        def enter1(interp, frame):
            values = frame.values
            value = get_in(interp, values)
            stats = interp.stats
            stats.cycles += interp._cost_instruction
            stats.instructions += 1
            values[phi_key] = value
            frame.prev_block = frame.block
            frame.block = target
            frame.index = first_index
            ops = edge.ops
            frame.ops = ops if ops is not None else edge.resolve()

        return enter1

    n = len(moves)

    def entern(interp, frame):
        values = frame.values
        staged = [(key, getter(interp, values)) for key, getter in moves]
        stats = interp.stats
        stats.cycles += interp._cost_instruction * n
        stats.instructions += n
        for key, value in staged:
            values[key] = value
        frame.prev_block = frame.block
        frame.block = target
        frame.index = first_index
        ops = edge.ops
        frame.ops = ops if ops is not None else edge.resolve()

    return entern


# ----------------------------------------------------------------------
# Per-instruction compilation
# ----------------------------------------------------------------------

#: Simple (never-faulting) integer ops, by infix symbol for the template.
_INT_OP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^",
}
_ICMP_SIGNED = {
    "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
}
_ICMP_UNSIGNED = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}
_FCMP_SYMBOL = {
    "oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">=",
}


def _compile_binary(inst: BinaryInst) -> Op:
    key = id(inst)
    ty = inst.type
    op = inst.opcode
    if isinstance(ty, IntType):
        # Constant-fold fully-constant int ops at compile time (same fold
        # the reference runs per tick; only when it succeeds — a folding
        # failure must still fault at run time, in order).
        if isinstance(inst.lhs, ConstantInt) and isinstance(inst.rhs, ConstantInt):
            folded = fold_int_binop(op, ty, inst.lhs.value, inst.rhs.value)
            if folded is not None:

                def const_op(interp, frame, _key=key, _folded=folded):
                    interp.stats.cycles += interp._cost_instruction
                    frame.values[_key] = _folded

                return const_op
        symbol = _INT_OP_SYMBOL.get(op)
        if symbol is not None:
            # wrap() inlined: mask to the width, re-sign if the top bit
            # is set — bit-identical to IntType.wrap.
            ns = {
                "_key": key,
                "_max_u": ty.max_unsigned,
                "_max_s": ty.max_signed,
                "_span": ty.max_unsigned + 1,
                "_lhs_v": inst.lhs,
                "_rhs_v": inst.rhs,
            }
            lhs = _expr(inst.lhs, ns, "l")
            rhs = _expr(inst.rhs, ns, "r")
            return _gen(
                "def op(interp, frame):\n"
                "    interp.stats.cycles += interp._cost_instruction\n"
                "    values = frame.values\n"
                "    try:\n"
                f"        m = (int({lhs}) {symbol} int({rhs})) & _max_u\n"
                "    except KeyError:\n"
                "        _raise_undefined(interp, values, _lhs_v, _rhs_v)\n"
                "    values[_key] = m - _span if m > _max_s else m\n",
                ns,
            )
        # Division/remainder/shift family: keep the shared fold so the
        # fault conditions stay byte-for-byte identical.
        get_l = _operand(inst.lhs)
        get_r = _operand(inst.rhs)

        def int_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            values = frame.values
            lhs_val = get_l(interp, values)
            rhs_val = get_r(interp, values)
            result = fold_int_binop(op, ty, int(lhs_val), int(rhs_val))
            if result is None:
                raise InterpError(
                    f"integer fault: {op} {lhs_val}, {rhs_val} "
                    f"(division by zero or invalid shift)"
                )
            values[key] = result

        return int_op
    if op in ("fadd", "fsub", "fmul"):
        symbol = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
        ns = {"_key": key, "_lhs_v": inst.lhs, "_rhs_v": inst.rhs}
        lhs = _expr(inst.lhs, ns, "l")
        rhs = _expr(inst.rhs, ns, "r")
        return _gen(
            "def op(interp, frame):\n"
            "    interp.stats.cycles += interp._cost_instruction\n"
            "    values = frame.values\n"
            "    try:\n"
            f"        values[_key] = float({lhs}) {symbol} float({rhs})\n"
            "    except KeyError:\n"
            "        _raise_undefined(interp, values, _lhs_v, _rhs_v)\n",
            ns,
        )
    if op == "fdiv":
        ns = {
            "_key": key,
            "_lhs_v": inst.lhs,
            "_rhs_v": inst.rhs,
            "_inf": math.inf,
            "_nan": math.nan,
        }
        lhs = _expr(inst.lhs, ns, "l")
        rhs = _expr(inst.rhs, ns, "r")
        return _gen(
            "def op(interp, frame):\n"
            "    interp.stats.cycles += interp._cost_instruction\n"
            "    values = frame.values\n"
            "    try:\n"
            f"        a = float({lhs})\n"
            f"        b = float({rhs})\n"
            "    except KeyError:\n"
            "        _raise_undefined(interp, values, _lhs_v, _rhs_v)\n"
            "    if b == 0.0:\n"
            "        values[_key] = _inf if a > 0 else (-_inf if a < 0 else _nan)\n"
            "    else:\n"
            "        values[_key] = a / b\n",
            ns,
        )
    if op == "frem":
        get_l = _operand(inst.lhs)
        get_r = _operand(inst.rhs)

        def frem_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            values = frame.values
            lhs_val = float(get_l(interp, values))
            rhs_val = float(get_r(interp, values))
            values[key] = math.fmod(lhs_val, rhs_val) if rhs_val != 0 else math.nan

        return frem_op
    get_l = _operand(inst.lhs)
    get_r = _operand(inst.rhs)

    def bad_float_op(interp, frame, _op=op):
        interp.stats.cycles += interp._cost_instruction
        get_l(interp, frame.values)
        get_r(interp, frame.values)
        raise InterpError(f"unknown float op {_op!r}")

    return bad_float_op


def _compile_icmp(inst: ICmpInst) -> Op:
    key = id(inst)
    pred = inst.predicate
    bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
    ns = {"_key": key, "_lhs_v": inst.lhs, "_rhs_v": inst.rhs}
    lhs = _expr(inst.lhs, ns, "l")
    rhs = _expr(inst.rhs, ns, "r")
    symbol = _ICMP_SIGNED.get(pred)
    if symbol is not None:
        compare = f"int({lhs}) {symbol} int({rhs})"
    else:
        symbol = _ICMP_UNSIGNED.get(pred)
        if symbol is None:
            get_l = _operand(inst.lhs)
            get_r = _operand(inst.rhs)

            def generic_icmp_op(interp, frame):
                interp.stats.cycles += interp._cost_instruction
                values = frame.values
                values[key] = int(
                    fold_icmp(
                        pred,
                        int(get_l(interp, values)),
                        int(get_r(interp, values)),
                        bits,
                    )
                )

            return generic_icmp_op
        ns["_mask"] = (1 << bits) - 1
        compare = f"(int({lhs}) & _mask) {symbol} (int({rhs}) & _mask)"
    return _gen(
        "def op(interp, frame):\n"
        "    interp.stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"        values[_key] = 1 if {compare} else 0\n"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, _lhs_v, _rhs_v)\n",
        ns,
    )


def _compile_fcmp(inst: FCmpInst) -> Op:
    key = id(inst)
    symbol = _FCMP_SYMBOL[inst.predicate]
    ns = {"_key": key, "_lhs_v": inst.lhs, "_rhs_v": inst.rhs}
    lhs = _expr(inst.lhs, ns, "l")
    rhs = _expr(inst.rhs, ns, "r")
    # NaN check inline: x != x is the call-free isnan.
    return _gen(
        "def op(interp, frame):\n"
        "    interp.stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"        a = float({lhs})\n"
        f"        b = float({rhs})\n"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, _lhs_v, _rhs_v)\n"
        "    values[_key] = 0 if (a != a or b != b) else "
        f"(1 if a {symbol} b else 0)\n",
        ns,
    )


def _compile_cast(inst: CastInst) -> Op:
    key = id(inst)
    op = inst.opcode
    ns = {"_key": key, "_val_v": inst.value}
    value = _expr(inst.value, ns, "v")
    if op in ("bitcast", "ptrtoint", "inttoptr", "sext"):
        body = f"        values[_key] = int({value})\n"
    elif op == "trunc":
        ns["_max_u"] = inst.type.max_unsigned
        ns["_max_s"] = inst.type.max_signed
        ns["_span"] = inst.type.max_unsigned + 1
        body = (
            f"        m = int({value}) & _max_u\n"
            "        values[_key] = m - _span if m > _max_s else m\n"
        )
    elif op == "zext":
        ns["_max_u"] = inst.value.type.max_unsigned
        body = f"        values[_key] = int({value}) & _max_u\n"
    elif op == "sitofp":
        body = f"        values[_key] = float(int({value}))\n"
    elif op == "fptosi":
        wrap = inst.type.wrap
        get_v = _operand(inst.value)

        def fptosi_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            values = frame.values
            f = float(get_v(interp, values))
            values[key] = 0 if (math.isnan(f) or math.isinf(f)) else wrap(int(f))

        return fptosi_op
    else:
        get_v = _operand(inst.value)

        def bad_cast_op(interp, frame, _op=op):
            interp.stats.cycles += interp._cost_instruction
            get_v(interp, frame.values)
            raise InterpError(f"unknown cast {_op!r}")

        return bad_cast_op
    return _gen(
        "def op(interp, frame):\n"
        "    interp.stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"{body}"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, _val_v)\n",
        ns,
    )


def _gep_plan(
    inst: GEPInst,
) -> Tuple[int, List[Tuple[Value, int]], Optional[str]]:
    """Walk the indexed type once, at compile time: each index contributes
    either a static offset (constant index) or a dynamic ``(value, stride)``
    term.  Struct indices are constant by construction.  Returns
    ``(const_offset, dynamic_terms, bad_type_rep)``; a non-``None`` third
    element names the non-aggregate type the walk hit, and the caller must
    then emit the lazy reference fault with that exact wording.  Shared
    with the trace tier, which inlines the same address expression into
    superblock bodies."""
    const_offset = 0
    dynamic: List[Tuple[Value, int]] = []
    current: Type = inst.source_type
    for i, index in enumerate(inst.indices):
        if i == 0:
            stride = stride_of(current)
        elif isinstance(current, ArrayType):
            stride = stride_of(current.element)
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, ConstantInt):
                raise InterpError("struct gep index must be constant")
            const_offset += struct_field_offset(current, index.value)
            current = current.fields[index.value]
            continue
        else:
            return 0, [], str(current)
        if isinstance(index, ConstantInt):
            const_offset += index.value * stride
        else:
            dynamic.append((index, stride))
    return const_offset, dynamic, None


def _compile_gep(inst: GEPInst) -> Op:
    key = id(inst)
    const_offset, dynamic, bad_type = _gep_plan(inst)
    if bad_type is not None:
        # Mirror the reference fault lazily: the bad index is only an
        # error if the instruction actually executes.

        def bad_gep_op(interp, frame, _rep=bad_type):
            interp.stats.cycles += interp._cost_instruction
            raise InterpError(f"gep into non-aggregate {_rep}")

        return bad_gep_op

    ns: Dict[str, object] = {"_key": key}
    operands: List[Value] = [inst.pointer]
    terms = [f"int({_expr(inst.pointer, ns, 'p')})"]
    if const_offset:
        ns["_off"] = const_offset
        terms.append("_off")
    for n, (index, stride) in enumerate(dynamic):
        operands.append(index)
        term = f"int({_expr(index, ns, f'i{n}')})"
        if stride != 1:
            ns[f"_s{n}"] = stride
            term += f" * _s{n}"
        terms.append(term)
    ns["_operands"] = tuple(operands)
    return _gen(
        "def op(interp, frame):\n"
        "    interp.stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"        values[_key] = {' + '.join(terms)}\n"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, *_operands)\n",
        ns,
    )


def _compile_load(inst: LoadInst) -> Op:
    key = id(inst)
    ty = inst.type
    size = size_of(ty)
    ns: Dict[str, object] = {"_key": key, "_size": size, "_ptr_v": inst.pointer}
    pointer = _expr(inst.pointer, ns, "p")
    if isinstance(ty, IntType):
        ns["_max_s"] = ty.max_signed
        ns["_span"] = ty.max_unsigned + 1
        decode = (
            "    m = int.from_bytes(raw, 'little')\n"
            "    values[_key] = m - _span if m > _max_s else m\n"
        )
    elif isinstance(ty, FloatType):
        ns["_unpack"] = struct.Struct("<d" if ty.bits == 64 else "<f").unpack
        decode = "    values[_key] = _unpack(raw)[0]\n"
    elif isinstance(ty, PointerType):
        decode = "    values[_key] = int.from_bytes(raw, 'little')\n"
    else:
        get_ptr = _operand(inst.pointer)
        rep = str(ty)

        def bad_load_op(interp, frame, _rep=rep):
            stats = interp.stats
            stats.cycles += interp._cost_instruction
            int(get_ptr(interp, frame.values))
            stats.cycles += interp._cost_memory
            stats.loads += 1
            raise InterpError(f"cannot load a value of type {_rep}")

        return bad_load_op
    return _gen(
        "def op(interp, frame):\n"
        "    stats = interp.stats\n"
        "    stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"        address = int({pointer})\n"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, _ptr_v)\n"
        "    stats.cycles += interp._cost_memory\n"
        "    stats.loads += 1\n"
        "    if interp._tier_boundary is not None:\n"
        "        interp._charge_tier(address)\n"
        "    if interp.access_probe is not None:\n"
        "        interp.access_probe(address, _size, 'read')\n"
        "    if interp.is_carat:\n"
        "        raw = interp.memory.read_bytes(address, _size)\n"
        "    else:\n"
        "        raw = interp._read_mem(address, _size, 'read')\n"
        f"{decode}",
        ns,
    )


def _compile_store(inst: StoreInst) -> Op:
    ty = inst.value.type
    size = size_of(ty)
    ns: Dict[str, object] = {
        "_size": size,
        "_ptr_v": inst.pointer,
        "_val_v": inst.value,
    }
    pointer = _expr(inst.pointer, ns, "p")
    value = _expr(inst.value, ns, "v")
    if isinstance(ty, IntType):
        ns["_max_u"] = ty.max_unsigned
        encode = f"(int(value) & _max_u).to_bytes(_size, 'little')"
    elif isinstance(ty, FloatType):
        ns["_pack"] = struct.Struct("<d" if ty.bits == 64 else "<f").pack
        encode = "_pack(float(value))"
    elif isinstance(ty, PointerType):
        ns["_mask64"] = _MASK64
        encode = "(int(value) & _mask64).to_bytes(8, 'little')"
    else:
        get_ptr = _operand(inst.pointer)
        get_val = _operand(inst.value)
        rep = str(ty)

        def bad_store_op(interp, frame, _rep=rep):
            stats = interp.stats
            stats.cycles += interp._cost_instruction
            values = frame.values
            int(get_ptr(interp, values))
            get_val(interp, values)
            stats.cycles += interp._cost_memory
            stats.stores += 1
            raise InterpError(f"cannot store a value of type {_rep}")

        return bad_store_op
    return _gen(
        "def op(interp, frame):\n"
        "    stats = interp.stats\n"
        "    stats.cycles += interp._cost_instruction\n"
        "    values = frame.values\n"
        "    try:\n"
        f"        address = int({pointer})\n"
        f"        value = {value}\n"
        "    except KeyError:\n"
        "        _raise_undefined(interp, values, _ptr_v, _val_v)\n"
        "    stats.cycles += interp._cost_memory\n"
        "    stats.stores += 1\n"
        "    if interp._tier_boundary is not None:\n"
        "        interp._charge_tier(address)\n"
        "    if interp.access_probe is not None:\n"
        "        interp.access_probe(address, _size, 'write')\n"
        f"    raw = {encode}\n"
        "    if interp.is_carat:\n"
        "        interp.memory.write_bytes(address, raw)\n"
        "    else:\n"
        "        interp._write_mem(address, raw)\n",
        ns,
    )


def _compile_select(inst: SelectInst) -> Op:
    key = id(inst)
    get_cond = _operand(inst.condition)
    get_true = _operand(inst.true_value)
    get_false = _operand(inst.false_value)

    def select_op(interp, frame):
        interp.stats.cycles += interp._cost_instruction
        values = frame.values
        chosen = get_true if get_cond(interp, values) else get_false
        values[key] = chosen(interp, values)

    return select_op


def _compile_alloca(inst: AllocaInst) -> Op:
    key = id(inst)
    stride = stride_of(inst.allocated_type)
    if isinstance(inst.count, ConstantInt):
        size = stride * max(0, inst.count.value)

        def static_alloca_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            new_sp = (interp.sp - size) & ~0xF
            if new_sp <= interp.stack_base:
                raise ProtectionFault(new_sp, size, "stack")
            interp.sp = new_sp
            frame.values[key] = new_sp

        return static_alloca_op
    get_count = _operand(inst.count)

    def alloca_op(interp, frame):
        interp.stats.cycles += interp._cost_instruction
        size = stride * max(0, int(get_count(interp, frame.values)))
        new_sp = (interp.sp - size) & ~0xF
        if new_sp <= interp.stack_base:
            raise ProtectionFault(new_sp, size, "stack")
        interp.sp = new_sp
        frame.values[key] = new_sp

    return alloca_op


def _compile_branch(inst: BranchInst, code: "ModuleCode") -> Op:
    source = inst.parent
    if not inst.is_conditional:
        edge = _Edge(code, source, inst.targets[0])
        if not edge.moves:
            target = edge.target
            first_index = edge.first_index

            def jump_op(interp, frame):
                interp.stats.cycles += interp._cost_instruction
                frame.prev_block = frame.block
                frame.block = target
                frame.index = first_index
                ops = edge.ops
                frame.ops = ops if ops is not None else edge.resolve()

            return jump_op
        if len(edge.moves) == 1:
            # The canonical loop latch: one phi move, fully inlined.
            ((phi_key, get_in),) = edge.moves
            target = edge.target
            first_index = edge.first_index

            def jump_phi1_op(interp, frame):
                stats = interp.stats
                stats.cycles += interp._cost_instruction
                values = frame.values
                value = get_in(interp, values)
                stats.cycles += interp._cost_instruction
                stats.instructions += 1
                values[phi_key] = value
                frame.prev_block = frame.block
                frame.block = target
                frame.index = first_index
                ops = edge.ops
                frame.ops = ops if ops is not None else edge.resolve()

            return jump_phi1_op
        enter = _edge_enter(edge)

        def jump_phi_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            enter(interp, frame)

        return jump_phi_op
    edge_true = _Edge(code, source, inst.targets[0])
    edge_false = _Edge(code, source, inst.targets[1])
    cond_v = inst.condition
    cond_key = _slot_key(cond_v)
    if cond_key is not None and not edge_true.moves and not edge_false.moves:

        def branch_slot_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            values = frame.values
            try:
                cond = values[cond_key]
            except KeyError:
                _raise_undefined(interp, values, cond_v)
            edge = edge_true if cond else edge_false
            frame.prev_block = frame.block
            frame.block = edge.target
            frame.index = edge.first_index
            ops = edge.ops
            frame.ops = ops if ops is not None else edge.resolve()

        return branch_slot_op
    enter_true = _edge_enter(edge_true)
    enter_false = _edge_enter(edge_false)
    if cond_key is not None:

        def branch_slot_phi_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            values = frame.values
            try:
                cond = values[cond_key]
            except KeyError:
                _raise_undefined(interp, values, cond_v)
            if cond:
                enter_true(interp, frame)
            else:
                enter_false(interp, frame)

        return branch_slot_phi_op
    get_cond = _operand(cond_v)

    def branch_op(interp, frame):
        interp.stats.cycles += interp._cost_instruction
        if get_cond(interp, frame.values):
            enter_true(interp, frame)
        else:
            enter_false(interp, frame)

    return branch_op


def _compile_return(inst: ReturnInst) -> Op:
    get_v = _operand(inst.return_value) if inst.return_value is not None else None

    def return_op(interp, frame):
        interp.stats.cycles += interp._cost_instruction
        value = get_v(interp, frame.values) if get_v is not None else None
        interp.sp = frame.sp_on_entry
        frames = interp.frames
        frames.pop()
        if not frames:
            if value is not None and isinstance(value, int):
                interp.exit_code = value
            raise ExitProgram(interp.exit_code)
        target = frame.result_target
        if target is not None and value is not None:
            frames[-1].values[id(target)] = value

    return return_op


def _compile_phi(inst: PhiInst) -> Op:
    block_name = inst.parent.name

    def phi_op(interp, frame, _name=block_name):
        interp.stats.cycles += interp._cost_instruction
        raise InterpError(f"phi executed out of band in %{_name}")

    return phi_op


def _compile_unreachable(inst: UnreachableInst) -> Op:
    fn_name = inst.parent.parent.name

    def unreachable_op(interp, frame, _name=fn_name):
        interp.stats.cycles += interp._cost_instruction
        raise InterpError(
            f"reached 'unreachable' in @{_name} "
            f"(undefined behavior at run time)"
        )

    return unreachable_op


# ----------------------------------------------------------------------
# Calls and intrinsics
# ----------------------------------------------------------------------


def _compile_intrinsic(inst: CallInst, name: str, code: "ModuleCode") -> Op:
    """CARAT intrinsics: no ``calls`` counter, no call cost — only the
    guard/tracking cycles the runtime reports (matches ``_exec_intrinsic``).
    Guard sites get a numbered memoization cell for the region cache."""
    args = inst.args
    if name in (GUARD_LOAD, GUARD_STORE):
        site = code.new_guard_site(inst)
        ns: Dict[str, object] = {
            "_site": site,
            "_access": "read" if name == GUARD_LOAD else "write",
            "_addr_v": args[0],
            "_size_v": args[1],
        }
        addr = _expr(args[0], ns, "a")
        size = _expr(args[1], ns, "s")
        return _gen(
            "def op(interp, frame):\n"
            "    stats = interp.stats\n"
            "    stats.cycles += interp._cost_instruction\n"
            "    runtime = interp.process.runtime\n"
            "    if runtime is None:\n"
            "        return\n"
            "    values = frame.values\n"
            "    try:\n"
            f"        address = int({addr})\n"
            f"        size = int({size})\n"
            "    except KeyError:\n"
            "        _raise_undefined(interp, values, _addr_v, _size_v)\n"
            "    cycles = runtime.guard_access(\n"
            "        address, size, _access, interp._guard_cells[_site])\n"
            "    stats.guard_cycles += cycles\n"
            "    stats.cycles += cycles\n",
            ns,
        )
    if name == GUARD_CALL:
        site = code.new_guard_site(inst)
        ns = {"_site": site, "_size_v": args[0]}
        size = _expr(args[0], ns, "s")
        return _gen(
            "def op(interp, frame):\n"
            "    stats = interp.stats\n"
            "    stats.cycles += interp._cost_instruction\n"
            "    runtime = interp.process.runtime\n"
            "    if runtime is None:\n"
            "        return\n"
            "    values = frame.values\n"
            "    try:\n"
            f"        size = int({size})\n"
            "    except KeyError:\n"
            "        _raise_undefined(interp, values, _size_v)\n"
            "    cycles = runtime.guard_call(\n"
            "        interp.sp, size, interp._guard_cells[_site])\n"
            "    stats.guard_cycles += cycles\n"
            "    stats.cycles += cycles\n",
            ns,
        )
    if name == GUARD_RANGE:
        site = code.new_guard_site(inst)
        ns = {"_site": site, "_addr_v": args[0], "_len_v": args[1]}
        addr = _expr(args[0], ns, "a")
        length = _expr(args[1], ns, "n")
        if len(args) > 2:
            ns["_flag_v"] = args[2]
            flag = _expr(args[2], ns, "f")
            access = f"('write' if int({flag}) else 'read')"
            undef = "_raise_undefined(interp, values, _addr_v, _len_v, _flag_v)"
        else:
            access = "'read'"
            undef = "_raise_undefined(interp, values, _addr_v, _len_v)"
        return _gen(
            "def op(interp, frame):\n"
            "    stats = interp.stats\n"
            "    stats.cycles += interp._cost_instruction\n"
            "    runtime = interp.process.runtime\n"
            "    if runtime is None:\n"
            "        return\n"
            "    values = frame.values\n"
            "    try:\n"
            f"        address = int({addr})\n"
            f"        length = int({length})\n"
            f"        access = {access}\n"
            "    except KeyError:\n"
            f"        {undef}\n"
            "    cycles = runtime.guard_range(\n"
            "        address, length, access, interp._guard_cells[_site])\n"
            "    stats.guard_cycles += cycles\n"
            "    stats.cycles += cycles\n",
            ns,
        )
    if name in (TRACK_ALLOC, TRACK_FREE, TRACK_ESCAPE):
        getters = tuple(_operand(a) for a in args)
        if name == TRACK_ALLOC:
            get_a, get_b = getters[0], getters[1]

            def dispatch(interp, runtime, values):
                runtime.on_alloc(
                    int(get_a(interp, values)), int(get_b(interp, values)), "heap"
                )

        elif name == TRACK_FREE:
            get_a = getters[0]

            def dispatch(interp, runtime, values):
                runtime.on_free(int(get_a(interp, values)))

        else:
            get_a = getters[0]

            def dispatch(interp, runtime, values):
                runtime.on_escape(int(get_a(interp, values)))

        def track_op(interp, frame):
            stats = interp.stats
            stats.cycles += interp._cost_instruction
            runtime = interp.process.runtime
            if runtime is None:
                return
            rstats = runtime.stats
            before = rstats.guard_cycles + rstats.tracking_cycles
            dispatch(interp, runtime, frame.values)
            delta = rstats.guard_cycles + rstats.tracking_cycles - before
            stats.tracking_cycles += delta
            stats.cycles += delta

        return track_op
    getters = tuple(_operand(a) for a in args)

    def unknown_intrinsic_op(interp, frame, _name=name):
        interp.stats.cycles += interp._cost_instruction
        if interp.process.runtime is None:
            return
        for getter in getters:
            getter(interp, frame.values)
        raise InterpError(f"unknown CARAT intrinsic {_name!r}")

    return unknown_intrinsic_op


def _compile_call(inst: CallInst, code: "ModuleCode") -> Op:
    callee = inst.callee
    if not isinstance(callee, Function):

        def indirect_op(interp, frame):
            interp.stats.cycles += interp._cost_instruction
            raise InterpError("indirect calls are rejected by CARAT restrictions")

        return indirect_op
    name = callee.name
    if name.startswith("carat."):
        return _compile_intrinsic(inst, name, code)
    if callee.is_declaration:
        want_result = not inst.type.is_void
        key = id(inst)

        def builtin_op(interp, frame):
            stats = interp.stats
            stats.cycles += interp._cost_instruction
            stats.calls += 1
            result = interp._exec_builtin(frame, inst, name)
            if want_result and result is not None:
                frame.values[key] = result
            stats.cycles += interp._cost_call

        return builtin_op
    arg_moves = tuple(
        (id(formal), _operand(actual))
        for formal, actual in zip(callee.args, inst.args)
    )
    result_target = inst if not inst.type.is_void else None
    entry_cell: List[List[Tuple[Op, bool]]] = []

    def call_op(interp, frame):
        stats = interp.stats
        stats.cycles += interp._cost_instruction
        stats.calls += 1
        frames = interp.frames
        if len(frames) >= interp.max_call_depth:
            raise InterpError(
                f"call depth exceeded ({interp.max_call_depth}) calling @{name}"
            )
        stats.cycles += interp._cost_call
        new_frame = _FastFrame(callee, interp.sp)
        values = frame.values
        new_values = new_frame.values
        for formal_key, getter in arg_moves:
            new_values[formal_key] = getter(interp, values)
        new_frame.result_target = result_target
        if entry_cell:
            new_frame.ops = entry_cell[0]
        else:
            ops = code.ops_by_block[id(callee.entry)]
            entry_cell.append(ops)
            new_frame.ops = ops
        frames.append(new_frame)

    return call_op


# ----------------------------------------------------------------------
# Whole-module compilation, cached on the module
# ----------------------------------------------------------------------

_METADATA_KEY = "fastexec.code"


class ModuleCode:
    """The compiled form of one module: per-block op lists plus guard-site
    numbering.  Cached in ``Module.metadata`` and shared across every run
    of the binary — per-run state (guard cells) lives on the interpreter,
    keyed by the site indices assigned here."""

    def __init__(self, module: Module) -> None:
        self.module = module
        #: block id -> list of (op, is_terminator), index-aligned with
        #: ``block.instructions``.  The terminator flag rides along so the
        #: dispatch loop's safepoint check costs one tuple unpack.
        self.ops_by_block: Dict[int, List[Tuple[Op, bool]]] = {}
        self.guard_sites = 0
        #: instruction id -> guard-site index, so the trace tier can find
        #: the memoization cell belonging to a guard it re-compiles.
        self.guard_site_of: Dict[int, int] = {}
        #: (anchor id, chain ids, variant) -> compiled trace code, shared
        #: across interpreters of the same binary (see machine.tracejit).
        self.trace_codes: Dict[tuple, object] = {}
        self.compiled_blocks = 0
        self.compiled_functions = 0
        for function in module.functions.values():
            if function.is_declaration:
                continue
            self.compiled_functions += 1
            for block in function.blocks:
                self.ops_by_block[id(block)] = [
                    (self._compile(inst), inst.is_terminator)
                    for inst in block.instructions
                ]
                self.compiled_blocks += 1

    def new_guard_site(self, inst: Instruction) -> int:
        site = self.guard_sites
        self.guard_sites += 1
        self.guard_site_of[id(inst)] = site
        return site

    def _compile(self, inst: Instruction) -> Op:
        if isinstance(inst, BinaryInst):
            return _compile_binary(inst)
        if isinstance(inst, LoadInst):
            return _compile_load(inst)
        if isinstance(inst, StoreInst):
            return _compile_store(inst)
        if isinstance(inst, GEPInst):
            return _compile_gep(inst)
        if isinstance(inst, ICmpInst):
            return _compile_icmp(inst)
        if isinstance(inst, FCmpInst):
            return _compile_fcmp(inst)
        if isinstance(inst, CastInst):
            return _compile_cast(inst)
        if isinstance(inst, SelectInst):
            return _compile_select(inst)
        if isinstance(inst, AllocaInst):
            return _compile_alloca(inst)
        if isinstance(inst, BranchInst):
            return _compile_branch(inst, self)
        if isinstance(inst, PhiInst):
            return _compile_phi(inst)
        if isinstance(inst, CallInst):
            return _compile_call(inst, self)
        if isinstance(inst, ReturnInst):
            return _compile_return(inst)
        if isinstance(inst, UnreachableInst):
            return _compile_unreachable(inst)
        opcode = inst.opcode

        def unknown_op(interp, frame, _opcode=opcode):
            interp.stats.cycles += interp._cost_instruction
            raise InterpError(f"unknown instruction {_opcode!r}")

        return unknown_op


def compile_module(module: Module) -> Tuple[ModuleCode, bool]:
    """Get-or-build the compiled code for ``module``.  Returns
    ``(code, was_cached)``."""
    cached = module.metadata.get(_METADATA_KEY)
    if isinstance(cached, ModuleCode) and cached.module is module:
        return cached, True
    code = ModuleCode(module)
    module.metadata[_METADATA_KEY] = code
    return code, False


# ----------------------------------------------------------------------
# The fast interpreter
# ----------------------------------------------------------------------


class FastInterpreter(Interpreter):
    """Drop-in Interpreter that executes compiled ops.

    Inherits every slow-path helper (translation, builtins, snapshots,
    retry) from the reference; only the dispatch loop and the frame
    construction differ.  Stats parity is bit-exact for all modeled
    counters; the ``dispatch_cache_*``/``compiled_blocks`` fields and the
    runtime's ``region_cache_*`` counters are the only additions.
    """

    def __init__(
        self,
        process: Process,
        kernel: Kernel,
        max_call_depth: int = 512,
        stack_range: Optional[Tuple[int, int]] = None,
        thread_id: int = 0,
    ) -> None:
        super().__init__(process, kernel, max_call_depth, stack_range, thread_id)
        code, was_cached = compile_module(self.module)
        self._code = code
        self.stats.compiled_blocks = code.compiled_blocks
        # Hit/miss accounting is in *block* units, matching
        # ``compiled_blocks``: a cold run compiles every block (all
        # misses), a warm run reuses every block (all hits).  Counting
        # functions here — or nothing on the cold path — made the hit
        # rate unrelatable to the cache's actual unit of work.
        if was_cached:
            self.stats.dispatch_cache_hits = code.compiled_blocks
        else:
            self.stats.dispatch_cache_misses = code.compiled_blocks
        #: Per-site region-cache cells — per interpreter, NOT in the
        #: shared compiled code: a fresh RegionSet could coincidentally
        #: repeat a stale (generation, geometry) pair across runs.
        self._guard_cells = [GuardSiteCell() for _ in range(code.guard_sites)]
        # Cost-model constants snapshotted for the hot loop.
        self._cost_instruction = self.costs.instruction
        self._cost_memory = self.costs.memory_access
        self._cost_call = self.costs.call
        runtime = process.runtime
        if runtime is not None:
            runtime.enable_region_cache()

    def start(self, entry: str = "main", args: Tuple = ()) -> None:
        function = self.module.get_function(entry)
        if function.is_declaration:
            raise InterpError(f"entry point @{entry} has no body")
        frame = _FastFrame(function, self.sp)
        frame.ops = self._code.ops_by_block[id(frame.block)]
        for formal, actual in zip(function.args, args):
            frame.values[id(formal)] = actual
        self.frames.append(frame)
        self.finished = False

    def run_steps(self, max_steps: int) -> str:
        """Same contract and safepoint semantics as the reference loop —
        only the per-instruction work is the pre-compiled op."""
        if self.profiler is not None:
            return self._run_steps_profiled(max_steps)
        steps = 0
        at_safepoint = False
        frames = self.frames
        stats = self.stats
        hard_stop = max_steps + 100_000
        while frames:
            if steps >= max_steps and (at_safepoint or steps >= hard_stop):
                break  # pause at a safepoint (or give up on alignment)
            frame = frames[-1]
            index = frame.index
            try:
                op, is_terminator = frame.ops[index]
            except IndexError:
                raise InterpError(
                    f"fell off block %{frame.block.name} in "
                    f"@{frame.function.name}"
                ) from None
            frame.index = index + 1
            try:
                op(self, frame)
            except ExitProgram as exit_request:
                self.exit_code = exit_request.code
                frames.clear()
                break
            steps += 1
            stats.instructions += 1
            at_safepoint = is_terminator
            if is_terminator and stats.instructions >= self._next_tick:
                self._next_tick = stats.instructions + self.tick_interval
                if self.tick_hook is not None:
                    self.tick_hook(self)
        if not frames:
            self.finished = True
            self.kernel.exit_process(self.process, self.exit_code)
            return "done"
        return "running"

    def _run_steps_profiled(self, max_steps: int) -> str:
        """The dispatch loop with per-op cycle-delta capture.

        A mirror of :meth:`run_steps` — the reference engine profiles by
        wrapping ``_execute``, but here the op call *is* the hot loop, so
        the profiled variant lives in its own method and the unprofiled
        loop stays untouched.  The snapshot/account pair brackets exactly
        the op call (cycles are only ever charged inside ops), and
        ``account`` runs in a ``finally`` so faulting instructions still
        reconcile.  No simulated cycles are charged by any of this.
        """
        profiler = self.profiler
        steps = 0
        at_safepoint = False
        frames = self.frames
        stats = self.stats
        hard_stop = max_steps + 100_000
        while frames:
            if steps >= max_steps and (at_safepoint or steps >= hard_stop):
                break  # pause at a safepoint (or give up on alignment)
            frame = frames[-1]
            index = frame.index
            try:
                op, is_terminator = frame.ops[index]
            except IndexError:
                raise InterpError(
                    f"fell off block %{frame.block.name} in "
                    f"@{frame.function.name}"
                ) from None
            frame.index = index + 1
            name = frame.function.name
            profiler.current_function = name
            before = profiler.snap(stats)
            try:
                try:
                    op(self, frame)
                finally:
                    profiler.account(name, stats, before)
            except ExitProgram as exit_request:
                self.exit_code = exit_request.code
                frames.clear()
                break
            steps += 1
            stats.instructions += 1
            at_safepoint = is_terminator
            if is_terminator and stats.instructions >= self._next_tick:
                self._next_tick = stats.instructions + self.tick_interval
                if self.tick_hook is not None:
                    self.tick_hook(self)
        if not frames:
            self.finished = True
            self.kernel.exit_process(self.process, self.exit_code)
            return "done"
        return "running"
