"""The IR interpreter: the "CPU" both execution models run on.

Executes a loaded process's IR directly against simulated physical
memory, charging the cost model per instruction:

* **traditional mode** — every data access goes through the process MMU
  (DTLB → STLB → pagewalk), page faults trap to the kernel for demand
  paging, and the TLB counters behind Figure 2 accumulate;
* **CARAT mode** — addresses are physical and accesses go straight to
  memory; protection comes from the injected ``carat.guard.*`` calls,
  which dispatch into the runtime (charging the guard mechanism's cost),
  and the tracking callbacks keep the Allocation Table / escape map live.

The interpreter is resumable (``run_steps``) so experiment harnesses can
interleave kernel activity — page moves, protection changes — with
execution, and it can produce/apply the register snapshots the world-stop
protocol patches (SSA values standing in for the register file).
"""

from __future__ import annotations

import math
import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.carat.intrinsics import (
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
    TRACK_ALLOC,
    TRACK_ESCAPE,
    TRACK_FREE,
)
from repro.errors import InterpError, ProtectionFault, SegmentationFault
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    size_of,
    stride_of,
    struct_field_offset,
)
from repro.ir.values import (
    Argument,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)
from repro.kernel.kernel import Kernel
from repro.kernel.mmu import PageFault
from repro.kernel.pagetable import PAGE_SIZE
from repro.kernel.process import Process
from repro.machine.costs import CostModel
from repro.runtime.patching import RegisterSnapshot
from repro.transform.simplify import fold_icmp, fold_int_binop


class ExitProgram(Exception):
    """Raised internally when the top frame returns; carries the code."""

    def __init__(self, code: int = 0) -> None:
        super().__init__(f"program exited with code {code}")
        self.code = code


@dataclass
class InterpStats:
    """Per-run counters: instructions, cycles, and cost attribution."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0
    translation_cycles: int = 0
    guard_cycles: int = 0
    tracking_cycles: int = 0
    page_fault_cycles: int = 0
    #: Tiered-memory accounting (CARAT mode on a tiered kernel only).
    fast_tier_accesses: int = 0
    slow_tier_accesses: int = 0
    tier_cycles: int = 0
    #: Fast-engine dispatch-cache accounting (always zero under the
    #: reference engine): basic blocks available in compiled form, and
    #: per-function reuse of the module's compiled-code cache.  These are
    #: wall-clock bookkeeping, not modeled cycles — they never feed the
    #: cost model.
    compiled_blocks: int = 0
    dispatch_cache_hits: int = 0
    dispatch_cache_misses: int = 0
    #: Trace-tier accounting (``--engine trace`` only; both other engines
    #: leave these at zero).  Like the dispatch-cache counters these are
    #: wall-clock bookkeeping: superblocks compiled, side exits back to
    #: the block tier, guard re-specializations after a region-generation
    #: bump, and guard checks served by a specialized (pre-resolved)
    #: parameter check instead of the full mechanism dispatch.
    traces_compiled: int = 0
    trace_exits: int = 0
    trace_respecializations: int = 0
    guard_checks_elided: int = 0

    def hot_tier_share(self) -> float:
        """Fraction of tier-accounted accesses served by the fast tier."""
        total = self.fast_tier_accesses + self.slow_tier_accesses
        return self.fast_tier_accesses / total if total else 0.0

    def mpki(self, misses: int) -> float:
        return 1000.0 * misses / self.instructions if self.instructions else 0.0

    def to_dict(self) -> dict:
        """Uniform telemetry schema (``repro.telemetry.metrics``)."""
        return dataclasses.asdict(self)


class _Frame:
    __slots__ = (
        "function",
        "block",
        "index",
        "values",
        "sp_on_entry",
        "result_target",
        "prev_block",
    )

    def __init__(self, function: Function, sp_on_entry: int) -> None:
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        self.values: Dict[int, Union[int, float]] = {}
        self.sp_on_entry = sp_on_entry
        self.result_target: Optional[Instruction] = None
        self.prev_block: Optional[BasicBlock] = None


_STACK_RED_ZONE = 128
_MATH_BUILTINS = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "fabs": abs,
    "floor": math.floor,
}


class Interpreter:
    """One thread of execution; see the module docstring for the model."""

    def __init__(
        self,
        process: Process,
        kernel: Kernel,
        max_call_depth: int = 512,
        stack_range: Optional[Tuple[int, int]] = None,
        thread_id: int = 0,
    ) -> None:
        self.process = process
        self.kernel = kernel
        self.memory = kernel.memory
        self.costs = kernel.costs
        self.module = process.binary.module
        self.is_carat = process.is_carat
        self.stats = InterpStats()
        self.output: List[str] = []
        self.thread_id = thread_id
        #: Additional threads run on stacks allocated from the heap
        #: (Section 2.2: "these added stacks are allocated in heap
        #: memory"); the main thread uses the process stack and follows
        #: kernel-driven stack expansion dynamically.
        self._stack_range = stack_range
        self.sp = self.stack_top - _STACK_RED_ZONE
        self.frames: List[_Frame] = []
        self.max_call_depth = max_call_depth
        self.finished = False
        self.exit_code = 0
        #: Called every ``tick_interval`` instructions; harnesses hook
        #: kernel activity (page moves at a given rate) in here.
        self.tick_hook: Optional[Callable[["Interpreter"], None]] = None
        self.tick_interval = 10_000
        self._next_tick = self.tick_interval
        #: Access telemetry probe: called as (address, size, access) for
        #: every load/store when installed (the policy engine's heat
        #: tracker).  ``None`` keeps the hot path unchanged.
        self.access_probe: Optional[Callable[[int, int, str], None]] = None
        #: Attached :class:`~repro.telemetry.CycleProfiler` (set by its
        #: ``attach``).  The reference engine is profiled by wrapping
        #: ``_execute`` on the instance; the fast engine's loop checks
        #: this attribute and switches to its mirrored profiled loop.
        #: ``None`` keeps both hot paths byte-identical to pre-telemetry.
        self.profiler = None
        #: Fast/slow tier boundary for tier-cost accounting.  Addresses
        #: are physical only in CARAT mode, so tier charging is CARAT-only.
        self._tier_boundary: Optional[int] = (
            kernel.memory.fast_size if self.is_carat else None
        )

    @property
    def stack_base(self) -> int:
        if self._stack_range is not None:
            return self._stack_range[0]
        return self.process.layout.stack_base

    @property
    def stack_top(self) -> int:
        if self._stack_range is not None:
            return self._stack_range[1]
        return self.process.stack_top

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def start(self, entry: str = "main", args: Tuple = ()) -> None:
        function = self.module.get_function(entry)
        if function.is_declaration:
            raise InterpError(f"entry point @{entry} has no body")
        frame = _Frame(function, self.sp)
        for formal, actual in zip(function.args, args):
            frame.values[id(formal)] = actual
        self.frames.append(frame)
        self.finished = False

    def run(
        self, entry: str = "main", args: Tuple = (), max_steps: int = 50_000_000
    ) -> int:
        """Run to completion (or the step budget).  Returns the exit code."""
        self.start(entry, args)
        status = self.run_steps(max_steps)
        if status == "running":
            raise InterpError(
                f"step budget exhausted after {self.stats.instructions} "
                f"instructions in @{self.frames[-1].function.name}"
            )
        return self.exit_code

    def resync_stack_pointer(self) -> None:
        """Re-derive ``sp`` from the process layout.  Needed after page
        moves performed between interpreter construction and the first
        instruction (e.g. pre-run fragmentation scatter) — there are no
        live registers to patch yet, only this cached pointer."""
        if self.frames:
            raise InterpError("cannot resync sp while frames are live")
        self.sp = self.stack_top - _STACK_RED_ZONE

    def set_tick_interval(self, interval: int) -> None:
        """Change the safepoint-callback cadence, rearming the pending
        tick (assigning ``tick_interval`` directly leaves the already
        scheduled tick at the old distance)."""
        self.tick_interval = interval
        self._next_tick = min(
            self._next_tick, self.stats.instructions + interval
        )

    def run_steps(self, max_steps: int) -> str:
        """Execute ~``max_steps`` instructions; 'done' or 'running'.

        When pausing, execution continues to the next safepoint (block
        boundary) so the caller can safely perform kernel activity —
        page moves, protection changes — against a patchable state.
        """
        steps = 0
        at_safepoint = False
        while self.frames and (steps < max_steps or not at_safepoint):
            if steps >= max_steps + 100_000:
                break  # degenerate single-block loop; give up on alignment
            frame = self.frames[-1]
            if frame.index >= len(frame.block.instructions):
                raise InterpError(
                    f"fell off block %{frame.block.name} in "
                    f"@{frame.function.name}"
                )
            inst = frame.block.instructions[frame.index]
            frame.index += 1
            try:
                self._execute(frame, inst)
            except ExitProgram as exit_request:
                self.exit_code = exit_request.code
                self.frames.clear()
                break
            steps += 1
            self.stats.instructions += 1
            # Kernel activity (tick hooks => world stops) may only happen at
            # *safepoints*: block boundaries.  Mid-block, an address can be
            # live in integer form (e.g. Opt2's ptrtoint -> arithmetic ->
            # inttoptr chain) where pointer patching cannot see it — the
            # same reason GCs and real CARAT stop threads at safepoints.
            at_safepoint = inst.is_terminator
            if (
                at_safepoint
                and self.stats.instructions >= self._next_tick
            ):
                self._next_tick = self.stats.instructions + self.tick_interval
                if self.tick_hook is not None:
                    self.tick_hook(self)
        if not self.frames:
            self.finished = True
            self.kernel.exit_process(self.process, self.exit_code)
            return "done"
        return "running"

    # ------------------------------------------------------------------
    # Value evaluation
    # ------------------------------------------------------------------

    def _eval(self, frame: _Frame, value: Value) -> Union[int, float]:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        key = id(value)
        if key in frame.values:
            return frame.values[key]
        if isinstance(value, ConstantNull):
            return 0
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            try:
                return self.process.globals_map[value.name]
            except KeyError:
                raise InterpError(f"global @{value.name} was not loaded")
        if isinstance(value, (Argument, Instruction)):
            raise InterpError(
                f"use of undefined value %{value.name} in "
                f"@{frame.function.name}"
            )
        raise InterpError(f"cannot evaluate operand {value!r}")

    # ------------------------------------------------------------------
    # Tiered-memory accounting
    # ------------------------------------------------------------------

    def _charge_tier(self, address: int) -> None:
        """Charge the access-latency premium of the tier serving a
        physical address (CARAT mode on a tiered kernel)."""
        if address < self._tier_boundary:
            self.stats.fast_tier_accesses += 1
            extra = self.costs.fast_tier_access
        else:
            self.stats.slow_tier_accesses += 1
            extra = self.costs.slow_tier_access
        if extra:
            self.stats.cycles += extra
            self.stats.tier_cycles += extra

    # ------------------------------------------------------------------
    # Memory with translation / fault handling
    # ------------------------------------------------------------------

    def _translate(self, vaddr: int, access: str) -> int:
        """Traditional-model translation with demand-paging retry."""
        mmu = self.process.mmu
        assert mmu is not None
        for _ in range(3):
            try:
                paddr, cycles = mmu.translate(vaddr, access)
                self.stats.cycles += cycles
                self.stats.translation_cycles += cycles
                return paddr
            except PageFault as fault:
                fault_cycles = self.kernel.handle_page_fault(self.process, fault)
                self.stats.cycles += fault_cycles
                self.stats.page_fault_cycles += fault_cycles
        raise SegmentationFault(vaddr, access)

    def _read_mem(self, address: int, size: int, access: str = "read") -> bytes:
        if not self.is_carat:
            first = self._translate(address, access)
            end_page = (address + size - 1) // PAGE_SIZE
            if address // PAGE_SIZE == end_page:
                return self.memory.read_bytes(first, size)
            # Page-crossing access: translate piecewise.
            out = bytearray()
            offset = 0
            while offset < size:
                vaddr = address + offset
                paddr = self._translate(vaddr, access) if offset else first
                chunk = min(size - offset, PAGE_SIZE - (vaddr % PAGE_SIZE))
                out += self.memory.read_bytes(paddr, chunk)
                offset += chunk
            return bytes(out)
        return self.memory.read_bytes(address, size)

    def _write_mem(self, address: int, data: bytes) -> None:
        if not self.is_carat:
            size = len(data)
            first = self._translate(address, "write")
            end_page = (address + size - 1) // PAGE_SIZE
            if address // PAGE_SIZE == end_page:
                self.memory.write_bytes(first, data)
                return
            offset = 0
            while offset < size:
                vaddr = address + offset
                paddr = self._translate(vaddr, "write") if offset else first
                chunk = min(size - offset, PAGE_SIZE - (vaddr % PAGE_SIZE))
                self.memory.write_bytes(paddr, data[offset : offset + chunk])
                offset += chunk
            return
        self.memory.write_bytes(address, data)

    def _load_typed(self, address: int, ty: Type) -> Union[int, float]:
        size = size_of(ty)
        raw = self._read_mem(address, size, "read")
        if isinstance(ty, IntType):
            return ty.wrap(int.from_bytes(raw, "little", signed=False))
        if isinstance(ty, FloatType):
            import struct

            return struct.unpack("<d" if ty.bits == 64 else "<f", raw)[0]
        if isinstance(ty, PointerType):
            return int.from_bytes(raw, "little", signed=False)
        raise InterpError(f"cannot load a value of type {ty}")

    def _store_typed(self, address: int, ty: Type, value: Union[int, float]) -> None:
        size = size_of(ty)
        if isinstance(ty, IntType):
            raw = (int(value) & ty.max_unsigned).to_bytes(size, "little")
        elif isinstance(ty, FloatType):
            import struct

            raw = struct.pack("<d" if ty.bits == 64 else "<f", float(value))
        elif isinstance(ty, PointerType):
            raw = (int(value) & ((1 << 64) - 1)).to_bytes(8, "little")
        else:
            raise InterpError(f"cannot store a value of type {ty}")
        self._write_mem(address, raw)

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------

    def _execute(self, frame: _Frame, inst: Instruction) -> None:
        self.stats.cycles += self.costs.instruction
        if isinstance(inst, BinaryInst):
            self._exec_binary(frame, inst)
        elif isinstance(inst, LoadInst):
            address = int(self._eval(frame, inst.pointer))
            self.stats.cycles += self.costs.memory_access
            self.stats.loads += 1
            if self._tier_boundary is not None:
                self._charge_tier(address)
            if self.access_probe is not None:
                self.access_probe(address, size_of(inst.type), "read")
            frame.values[id(inst)] = self._load_typed(address, inst.type)
        elif isinstance(inst, StoreInst):
            address = int(self._eval(frame, inst.pointer))
            value = self._eval(frame, inst.value)
            self.stats.cycles += self.costs.memory_access
            self.stats.stores += 1
            if self._tier_boundary is not None:
                self._charge_tier(address)
            if self.access_probe is not None:
                self.access_probe(address, size_of(inst.value.type), "write")
            self._store_typed(address, inst.value.type, value)
        elif isinstance(inst, GEPInst):
            frame.values[id(inst)] = self._exec_gep(frame, inst)
        elif isinstance(inst, ICmpInst):
            lhs = self._eval(frame, inst.lhs)
            rhs = self._eval(frame, inst.rhs)
            bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
            frame.values[id(inst)] = int(
                fold_icmp(inst.predicate, int(lhs), int(rhs), bits)
            )
        elif isinstance(inst, FCmpInst):
            frame.values[id(inst)] = self._exec_fcmp(frame, inst)
        elif isinstance(inst, CastInst):
            frame.values[id(inst)] = self._exec_cast(frame, inst)
        elif isinstance(inst, SelectInst):
            cond = self._eval(frame, inst.condition)
            chosen = inst.true_value if cond else inst.false_value
            frame.values[id(inst)] = self._eval(frame, chosen)
        elif isinstance(inst, AllocaInst):
            frame.values[id(inst)] = self._exec_alloca(frame, inst)
        elif isinstance(inst, BranchInst):
            self._exec_branch(frame, inst)
        elif isinstance(inst, PhiInst):
            # Phis are executed as a group on block entry (see _enter_block);
            # reaching one here means control fell onto it directly.
            raise InterpError(f"phi executed out of band in %{frame.block.name}")
        elif isinstance(inst, CallInst):
            self._exec_call(frame, inst)
        elif isinstance(inst, ReturnInst):
            self._exec_return(frame, inst)
        elif isinstance(inst, UnreachableInst):
            raise InterpError(
                f"reached 'unreachable' in @{frame.function.name} "
                f"(undefined behavior at run time)"
            )
        else:
            raise InterpError(f"unknown instruction {inst.opcode!r}")

    def _exec_binary(self, frame: _Frame, inst: BinaryInst) -> None:
        lhs = self._eval(frame, inst.lhs)
        rhs = self._eval(frame, inst.rhs)
        ty = inst.type
        if isinstance(ty, IntType):
            result = fold_int_binop(inst.opcode, ty, int(lhs), int(rhs))
            if result is None:
                raise InterpError(
                    f"integer fault: {inst.opcode} {lhs}, {rhs} "
                    f"(division by zero or invalid shift)"
                )
            frame.values[id(inst)] = result
            return
        lhs_f, rhs_f = float(lhs), float(rhs)
        op = inst.opcode
        if op == "fadd":
            out = lhs_f + rhs_f
        elif op == "fsub":
            out = lhs_f - rhs_f
        elif op == "fmul":
            out = lhs_f * rhs_f
        elif op == "fdiv":
            if rhs_f == 0.0:
                out = math.inf if lhs_f > 0 else (-math.inf if lhs_f < 0 else math.nan)
            else:
                out = lhs_f / rhs_f
        elif op == "frem":
            out = math.fmod(lhs_f, rhs_f) if rhs_f != 0 else math.nan
        else:
            raise InterpError(f"unknown float op {op!r}")
        frame.values[id(inst)] = out

    def _exec_fcmp(self, frame: _Frame, inst: FCmpInst) -> int:
        lhs = float(self._eval(frame, inst.lhs))
        rhs = float(self._eval(frame, inst.rhs))
        if math.isnan(lhs) or math.isnan(rhs):
            return 0  # ordered comparisons are false on NaN
        table = {
            "oeq": lhs == rhs,
            "one": lhs != rhs,
            "olt": lhs < rhs,
            "ole": lhs <= rhs,
            "ogt": lhs > rhs,
            "oge": lhs >= rhs,
        }
        return int(table[inst.predicate])

    def _exec_cast(self, frame: _Frame, inst: CastInst) -> Union[int, float]:
        value = self._eval(frame, inst.value)
        op = inst.opcode
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return int(value)
        if op == "trunc":
            assert isinstance(inst.type, IntType)
            return inst.type.wrap(int(value))
        if op == "zext":
            source = inst.value.type
            assert isinstance(source, IntType)
            return source.wrap_unsigned(int(value))
        if op == "sext":
            return int(value)
        if op == "sitofp":
            return float(int(value))
        if op == "fptosi":
            assert isinstance(inst.type, IntType)
            f = float(value)
            if math.isnan(f) or math.isinf(f):
                return 0
            return inst.type.wrap(int(f))
        raise InterpError(f"unknown cast {op!r}")

    def _exec_gep(self, frame: _Frame, inst: GEPInst) -> int:
        address = int(self._eval(frame, inst.pointer))
        current: Type = inst.source_type
        for i, index in enumerate(inst.indices):
            idx = int(self._eval(frame, index))
            if i == 0:
                address += idx * stride_of(current)
                continue
            if isinstance(current, ArrayType):
                address += idx * stride_of(current.element)
                current = current.element
            elif isinstance(current, StructType):
                address += struct_field_offset(current, idx)
                current = current.fields[idx]
            else:
                raise InterpError(f"gep into non-aggregate {current}")
        return address

    def _exec_alloca(self, frame: _Frame, inst: AllocaInst) -> int:
        count = int(self._eval(frame, inst.count))
        size = stride_of(inst.allocated_type) * max(0, count)
        new_sp = (self.sp - size) & ~0xF  # 16-byte align, grows down
        if new_sp <= self.stack_base:
            # Leave self.sp untouched so the kernel can expand the stack
            # and the instruction can be retried.
            raise ProtectionFault(new_sp, size, "stack")
        self.sp = new_sp
        return self.sp

    def _enter_block(self, frame: _Frame, target: BasicBlock) -> None:
        """Branch to ``target``: evaluate its phis as a parallel copy using
        values from the edge we arrived on."""
        source = frame.block
        phis = target.phis()
        if phis:
            staged: List[Tuple[int, Union[int, float]]] = []
            for phi in phis:
                staged.append(
                    (id(phi), self._eval(frame, phi.incoming_for_block(source)))
                )
                self.stats.cycles += self.costs.instruction
                self.stats.instructions += 1
            for key, value in staged:
                frame.values[key] = value
        frame.prev_block = source
        frame.block = target
        frame.index = target.first_non_phi_index()

    def _exec_branch(self, frame: _Frame, inst: BranchInst) -> None:
        if inst.is_conditional:
            cond = self._eval(frame, inst.condition)
            target = inst.targets[0] if cond else inst.targets[1]
        else:
            target = inst.targets[0]
        self._enter_block(frame, target)

    def _exec_return(self, frame: _Frame, inst: ReturnInst) -> None:
        value = (
            self._eval(frame, inst.return_value)
            if inst.return_value is not None
            else None
        )
        self.sp = frame.sp_on_entry
        self.frames.pop()
        if not self.frames:
            if value is not None and isinstance(value, int):
                self.exit_code = value
            raise ExitProgram(self.exit_code)
        caller = self.frames[-1]
        if frame.result_target is not None and value is not None:
            caller.values[id(frame.result_target)] = value

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _exec_call(self, frame: _Frame, inst: CallInst) -> None:
        callee = inst.callee
        if not isinstance(callee, Function):
            raise InterpError("indirect calls are rejected by CARAT restrictions")
        name = callee.name
        if name.startswith("carat."):
            self._exec_intrinsic(frame, inst, name)
            return
        self.stats.calls += 1
        if callee.is_declaration:
            result = self._exec_builtin(frame, inst, name)
            if not inst.type.is_void and result is not None:
                frame.values[id(inst)] = result
            self.stats.cycles += self.costs.call
            return
        if len(self.frames) >= self.max_call_depth:
            raise InterpError(
                f"call depth exceeded ({self.max_call_depth}) calling @{name}"
            )
        self.stats.cycles += self.costs.call
        new_frame = _Frame(callee, self.sp)
        for formal, actual in zip(callee.args, inst.args):
            new_frame.values[id(formal)] = self._eval(frame, actual)
        new_frame.result_target = inst if not inst.type.is_void else None
        self.frames.append(new_frame)

    def _exec_intrinsic(self, frame: _Frame, inst: CallInst, name: str) -> None:
        runtime = self.process.runtime
        if runtime is None:
            # Intrinsics in a traditional process are inert (the baseline
            # binary never contains them; this keeps mixed setups safe).
            return
        args = [self._eval(frame, a) for a in inst.args]
        before = runtime.stats.guard_cycles + runtime.stats.tracking_cycles
        if name == GUARD_LOAD:
            cycles = runtime.guard_access(int(args[0]), int(args[1]), "read")
            self.stats.guard_cycles += cycles
            self.stats.cycles += cycles
        elif name == GUARD_STORE:
            cycles = runtime.guard_access(int(args[0]), int(args[1]), "write")
            self.stats.guard_cycles += cycles
            self.stats.cycles += cycles
        elif name == GUARD_CALL:
            cycles = runtime.guard_call(self.sp, int(args[0]))
            self.stats.guard_cycles += cycles
            self.stats.cycles += cycles
        elif name == GUARD_RANGE:
            access = "write" if len(args) > 2 and int(args[2]) else "read"
            cycles = runtime.guard_range(int(args[0]), int(args[1]), access)
            self.stats.guard_cycles += cycles
            self.stats.cycles += cycles
        elif name == TRACK_ALLOC:
            runtime.on_alloc(int(args[0]), int(args[1]), "heap")
            delta = (
                runtime.stats.guard_cycles + runtime.stats.tracking_cycles - before
            )
            self.stats.tracking_cycles += delta
            self.stats.cycles += delta
        elif name == TRACK_FREE:
            runtime.on_free(int(args[0]))
            delta = (
                runtime.stats.guard_cycles + runtime.stats.tracking_cycles - before
            )
            self.stats.tracking_cycles += delta
            self.stats.cycles += delta
        elif name == TRACK_ESCAPE:
            runtime.on_escape(int(args[0]))
            delta = (
                runtime.stats.guard_cycles + runtime.stats.tracking_cycles - before
            )
            self.stats.tracking_cycles += delta
            self.stats.cycles += delta
        else:
            raise InterpError(f"unknown CARAT intrinsic {name!r}")

    def _exec_builtin(
        self, frame: _Frame, inst: CallInst, name: str
    ) -> Optional[Union[int, float]]:
        args = [self._eval(frame, a) for a in inst.args]
        heap = self.process.heap
        if name == "malloc":
            assert heap is not None
            return heap.malloc(int(args[0]))
        if name == "calloc":
            assert heap is not None
            total = int(args[0]) * int(args[1])
            address = heap.malloc(max(1, total))
            self._memset(address, 0, total)
            return address
        if name == "realloc":
            assert heap is not None
            old, new_size = int(args[0]), int(args[1])
            new = heap.malloc(max(1, new_size))
            if old:
                old_size = heap.size_of(old) or 0
                data = self._read_mem(old, min(old_size, new_size), "read")
                self._write_mem(new, data)
                heap.free(old)
            return new
        if name == "free":
            assert heap is not None
            if int(args[0]):
                heap.free(int(args[0]))
            return None
        if name == "print_long":
            self.output.append(str(int(args[0])))
            return None
        if name == "print_double":
            self.output.append(repr(float(args[0])))
            return None
        if name == "print_str":
            address = int(args[0])
            raw = bytearray()
            for offset in range(1 << 16):
                byte = self._read_mem(address + offset, 1, "read")[0]
                if byte == 0:
                    break
                raw.append(byte)
            self.output.append(raw.decode("utf-8", "replace"))
            return None
        if name in _MATH_BUILTINS:
            try:
                return float(_MATH_BUILTINS[name](float(args[0])))
            except ValueError:
                return math.nan
        if name == "abort":
            raise InterpError("program called abort()")
        raise InterpError(f"call to unimplemented external function @{name}")

    def _memset(self, address: int, byte: int, length: int) -> None:
        remaining = length
        cursor = address
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE - (cursor % PAGE_SIZE))
            self._write_mem(cursor, bytes([byte]) * chunk)
            cursor += chunk
            remaining -= chunk

    def retry_current_instruction(self) -> None:
        """Rewind one instruction after a recoverable fault (e.g. a stack
        guard abort the kernel answered with stack expansion)."""
        if not self.frames:
            raise InterpError("no frame to retry in")
        frame = self.frames[-1]
        if frame.index == 0:
            raise InterpError("cannot retry across a block boundary")
        frame.index -= 1

    # ------------------------------------------------------------------
    # World-stop integration (register snapshots)
    # ------------------------------------------------------------------

    def register_snapshots(self) -> List[RegisterSnapshot]:
        """Dump the live "registers": every pointer-typed SSA value in
        every frame (what the paper's signal handler finds on the stack)."""
        snapshots = []
        for i, frame in enumerate(self.frames):
            slots: Dict[str, int] = {}
            pointer_slots = set()
            for inst in frame.function.instructions():
                key = id(inst)
                if key in frame.values and inst.type.is_pointer:
                    slot = f"{i}:{key}"
                    slots[slot] = int(frame.values[key])
                    pointer_slots.add(slot)
            for arg in frame.function.args:
                key = id(arg)
                if key in frame.values and arg.type.is_pointer:
                    slot = f"{i}:{key}"
                    slots[slot] = int(frame.values[key])
                    pointer_slots.add(slot)
            # The frame's saved stack pointer is a pointer too (it must
            # follow a stack-page move).
            sp_slot = f"{i}:sp"
            slots[sp_slot] = frame.sp_on_entry
            pointer_slots.add(sp_slot)
            if i == len(self.frames) - 1:
                machine_sp = f"{i}:machine_sp"
                slots[machine_sp] = self.sp
                pointer_slots.add(machine_sp)
            snapshots.append(RegisterSnapshot(i, slots, pointer_slots))
        return snapshots

    def apply_snapshots(self, snapshots: List[RegisterSnapshot]) -> None:
        """Write patched register values back into the frames (threads
        resuming after the world stop)."""
        for snapshot in snapshots:
            frame = self.frames[snapshot.thread_id]
            for slot, value in snapshot.slots.items():
                _, key_text = slot.split(":")
                if key_text == "sp":
                    frame.sp_on_entry = value
                elif key_text == "machine_sp":
                    self.sp = value
                else:
                    frame.values[int(key_text)] = value
