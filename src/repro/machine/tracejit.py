"""The second-tier trace JIT: superblock compilation of hot paths.

The fast engine (:mod:`repro.machine.fastexec`) removes per-tick operand
classification but still pays one Python call, one tuple unpack, and one
safepoint check per instruction.  This module removes *that* — without
changing a single observable number:

* per-block hotness counters (bumped at block entry, i.e. at every
  taken branch) promote hot blocks to **anchors**: the next entry starts
  a recording, which captures the dynamic sequence of blocks executed
  until the anchor is re-entered — one superblock, the path a loop
  iteration actually takes;
* superblocks **span call frames**: a call to a defined function stays
  on the trace (the call op's body is inlined — a *real* frame is still
  pushed, so snapshots, faults and depth limits see the true stack —
  then the callee's blocks inline right behind it, and its return pops
  back to the caller mid-block), up to a recursion cap — so a loop
  whose body calls helpers compiles into one closure instead of
  bouncing through the dispatch loop at every call boundary;
* the superblock is compiled into a **single Python closure**: every
  instruction body is inlined into one generated source (the same
  templates fastexec specializes per instruction, but without the per-op
  dispatch around them), interior branch edges collapse their phi
  parallel-copies into direct slot assignments, and ``steps`` /
  ``instructions`` — plus the uniform per-op base cycle charge — are
  batched per block segment, with a fault reconciler that restores the
  exact per-op totals on any raise (the cost model never sees the
  difference);
* conditional branches keep both arms: the off-trace arm is a **side
  exit** that re-enters the block tier mid-loop (``trace_exits``
  counts them), with frame state — ``block``/``ops``/``index`` — kept
  consistent at every instruction boundary so faults, retries, register
  snapshots and world-stop patching all keep working unchanged;
* hot side-exit targets compile into **linear side traces**: exits bump
  the target's hotness (the dispatch loop's notification never sees
  them), and a recording started at an exit target may finish the
  moment it reaches *any* already-traced block, compiling a one-shot
  run of the off-trace path that hands straight back to the trace it
  re-joins — so workloads whose hot loop branches on data (an
  accept/reject split) stay in compiled code on both arms;
* ``carat.guard.*`` sites are **parameter-specialized** à la a
  branch-free translator: the trace bakes a per-site cell holding the
  resolved region's ``base``/``end`` and the mechanism's steady-state
  hit cost, guarded by one generation check against
  ``RegionSet.version`` — a page move, CoW break, or any region
  mutation bumps the generation and demotes the site to the generic
  runtime path, which re-specializes after its next allowed pass
  (``trace_respecializations``);
* the guard optimizer's coverage lattice
  (:func:`repro.carat.guard_opt.guard_tag` /
  :func:`~repro.carat.guard_opt.guard_covered`) is re-run over the
  recorded path at compile time: a guard dominated *on this path* by a
  covering guard (same address value, larger-or-equal constant size,
  write-covers-read) skips even the specialized bounds check and charges
  the steady cost directly (``guard_checks_elided``).  Availability is
  intra-iteration only and is killed by any ``alloca`` and by any
  redefinition of the address value (which includes phis at segment
  heads) — the block tier can run arbitrary code between trace
  invocations, so nothing proven in one iteration survives into the
  next.

Parity contract (enforced by the three-way differential tests): the
trace tier must produce bit-identical program output, memory, and exit
codes to *both* other engines, and semantically identical stats.  The
only fields that may differ are the engine-descriptive counters
(``dispatch_cache_*``, ``region_cache_*``, ``traces_compiled``,
``trace_exits``, ``trace_respecializations``, ``guard_checks_elided``).

Compiled trace code is cached on the module
(:attr:`~repro.machine.fastexec.ModuleCode.trace_codes`) keyed by the
recorded chain plus the specialization variant, and *instantiated* per
interpreter — specialization cells, cost constants, and runtime bindings
are per-tenant, so multi-tenant schedulers sharing one binary get
per-process generations and isolation for free.
"""

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Tuple

from repro.carat.guard_opt import guard_covered, guard_tag
from repro.carat.intrinsics import (
    GUARD_CALL,
    GUARD_LOAD,
    GUARD_RANGE,
    GUARD_STORE,
)
from repro.errors import InterpError
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, GlobalVariable
from repro.ir.types import FloatType, IntType, PointerType, size_of
from repro.ir.values import ConstantInt, Value
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.machine.fastexec import (
    _MASK64,
    _Edge,
    _edge_enter,
    _expr,
    _FastFrame,
    _gep_plan,
    _raise_undefined,
    _slot_key,
    _FCMP_SYMBOL,
    _ICMP_SIGNED,
    _ICMP_UNSIGNED,
    _INT_OP_SYMBOL,
    FastInterpreter,
    ModuleCode,
)
from repro.machine.interp import _MATH_BUILTINS, ExitProgram
from repro.transform.simplify import fold_int_binop

#: Guard mechanisms whose steady-state hit cost can be baked into a
#: specialized check (all three model one — see
#: :meth:`~repro.runtime.regions.GuardMechanism.steady_cycles`).
_SPECIALIZABLE = frozenset({"mpx", "binary_search", "if_tree"})

#: Names resolvable from every generated trace body, merged with the
#: per-trace and per-interpreter bindings at instantiation.
_TRACE_GLOBALS: Dict[str, object] = {
    "_raise_undefined": _raise_undefined,
    "_ifb": int.from_bytes,
    "_inf": math.inf,
    "_nan": math.nan,
    "_ierr": InterpError,
}

#: Consecutive recording aborts before an anchor is blacklisted.
_ABORT_LIMIT = 3

_UNBUILT = object()


class _SpecCell:
    """One specialized guard site: the resolved check's baked parameters.

    ``gen`` is the region generation the parameters were derived under;
    ``gen == -1`` means "not specialized" and every comparison against a
    real ``RegionSet.version`` (which starts at 0 and only grows) fails,
    so the site takes the generic runtime path until it re-specializes.
    """

    __slots__ = ("gen", "base", "end", "cycles", "leaf", "region", "access")

    def __init__(self) -> None:
        self.gen = -1
        self.base = 0
        self.end = 0
        self.cycles = 0
        self.leaf = -1
        self.region = None
        self.access = "read"


def _respecialize(spec, cell, regions, mech, access, stats, tracer) -> None:
    """Re-derive a site's baked parameters after a generation bump.

    Called from a trace's generic-guard path right after an *allowed*
    pass through the runtime: the site's
    :class:`~repro.runtime.runtime.GuardSiteCell` was just filled with
    the serving region under the current generation, so a valid cell is
    the common case.  Any doubt — stale cell, foreign RegionSet,
    permission mismatch, or a mechanism with no constant hit cost —
    leaves the site unspecialized (``gen = -1``), which only costs speed,
    never correctness.
    """
    spec.gen = -1
    region = cell.region
    if (
        region is None
        or cell.regions is not regions
        or cell.gen != regions.version
        or not region.allows(access)
    ):
        return
    cycles = mech.steady_cycles(regions)
    if cycles is None:
        return
    spec.region = region
    spec.base = region.base
    spec.end = region.end
    spec.cycles = cycles
    spec.leaf = region.base
    spec.access = access
    spec.gen = cell.gen
    stats.trace_respecializations += 1
    if tracer is not None:
        tracer.instant(
            "trace.respecialize", "trace",
            {"base": region.base, "end": region.end, "gen": cell.gen},
        )


class _Recorder:
    """An in-flight superblock recording: the anchor and the blocks
    entered since, in order, each with its frame depth *relative to the
    anchor frame* (0 = the anchor's own frame, 1 = a callee it pushed,
    ...).  Lives for one loop iteration.

    ``from_exit`` marks a recording whose anchor is a side-exit target:
    it may finish as a *linear* side trace the moment it reaches any
    block with an installed trace (typically its parent's anchor),
    instead of having to loop back to its own anchor."""

    __slots__ = ("frame", "anchor", "chain", "base_len", "from_exit")

    def __init__(
        self, frame, anchor: BasicBlock, base_len: int, from_exit: bool
    ) -> None:
        self.frame = frame
        self.anchor = anchor
        self.base_len = base_len
        self.from_exit = from_exit
        self.chain: List[Tuple[int, BasicBlock]] = [(0, anchor)]


class _TraceCode:
    """The compiled form of one superblock variant: generated source, its
    code object, and the build-time namespace (operand getters, edge
    closures, fallback ops — all interpreter-independent).  Cached in
    :attr:`ModuleCode.trace_codes`; :meth:`instantiate` binds the
    per-interpreter state (cost constants, guard cells, runtime, fresh
    specialization cells) and returns the executable closure."""

    __slots__ = (
        "source", "code_obj", "ns", "n_spec", "n_blocks", "n_guards",
        "specialize",
    )

    def __init__(
        self,
        source: str,
        ns: Dict[str, object],
        n_spec: int,
        n_blocks: int,
        n_guards: int,
        specialize: bool,
    ) -> None:
        self.source = source
        self.ns = ns
        self.n_spec = n_spec
        self.n_blocks = n_blocks
        self.n_guards = n_guards
        self.specialize = specialize
        self.code_obj = compile(source, "<tracejit>", "exec")

    def instantiate(self, interp: "TraceInterpreter"):
        scope: Dict[str, object] = dict(_TRACE_GLOBALS)
        scope.update(self.ns)
        scope["_ci"] = interp._cost_instruction
        scope["_cm"] = interp._cost_memory
        scope["_tb"] = interp._tier_boundary
        scope["_cft"] = interp.costs.fast_tier_access
        scope["_cst"] = interp.costs.slow_tier_access
        scope["_cells"] = interp._guard_cells
        scope["_rdb"] = interp.memory.read_bytes
        scope["_wrb"] = interp.memory.write_bytes
        # Raw physical-memory access, inlined on CARAT traces: the
        # backing buffer (an anonymous mmap) is allocated once per
        # kernel and never reassigned, so binding it here is binding
        # it for good.  The
        # out-of-range path delegates back to the real accessor for the
        # exact error.
        scope["_pm"] = interp.memory
        scope["_pmd"] = interp.memory._data
        scope["_pms"] = interp.memory.size
        scope["_rmem"] = interp._read_mem
        scope["_wmem"] = interp._write_mem
        scope["_respec"] = _respecialize
        scope["_cc"] = interp._cost_call
        scope["_gm"] = interp.process.globals_map
        runtime = interp.process.runtime
        if runtime is not None:
            scope["_rt"] = runtime
            scope["_rs"] = runtime.stats
            scope["_regions"] = runtime.regions
            scope["_windows"] = runtime._move_windows
            scope["_mech"] = runtime.guard
            scope["_tracer"] = runtime.tracer
        else:
            scope["_rt"] = None
            scope["_rs"] = None
            scope["_regions"] = None
            scope["_windows"] = ()
            scope["_mech"] = None
            scope["_tracer"] = None
        for j in range(self.n_spec):
            scope[f"_spec{j}"] = _SpecCell()
        exec(self.code_obj, scope)
        return scope["trace"]


class _W:
    """Tiny indented-source writer for the generated trace body."""

    __slots__ = ("lines",)

    def __init__(self) -> None:
        self.lines: List[str] = []

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


#: Deepest call nesting a trace may inline.  Recording aborts past it
#: (recursion would otherwise unroll without bound) and the layout
#: walker re-checks it when replaying the chain statically.
_MAX_INLINE_DEPTH = 8

#: Straight-line instructions the layout walker will visit before
#: declaring a chain degenerate (chains of single-block callees consume
#: no recorded entries, so the walk needs its own bound).
_LAYOUT_OP_BUDGET = 5000


def _layout(chain: List[Tuple[int, BasicBlock]], end: Optional[BasicBlock]):
    """Replay a recorded ``(depth, block)`` chain as a *static* walk from
    the anchor, linearizing it into emission segments.

    Each segment is ``(block, start, end, kind, data)``: body ops
    ``start..end-1`` followed by the control op at ``end`` — a ``"term"``
    (branch; ``data`` is ``(inst, on_trace_target)``), a ``"call"``
    (defined non-carat callee: the trace runs the block tier's call op,
    which pushes a real frame, then continues *inside* the callee's
    entry block), or a ``"return"`` (depth > 0 only: the block tier's
    return op pops the frame and the walk resumes in the caller right
    after the call).  Calls and returns consume no chain entries —
    recording only observes branch terminators, and a callee's entry is
    statically known from the call — so single-block callees inline for
    free.  Branches consume the next entry, which must sit at the
    walker's depth and be a target of the branch; when the chain is
    exhausted the closing branch must re-enter the anchor at depth 0 —
    or, for a *linear* side trace (``end`` is not ``None``), land on
    ``end``, the already-traced block the recording finished at.
    Any mismatch — a return at depth 0, mid-block terminators, phis or
    unreachables in a body, depth or target disagreement, recursion past
    :data:`_MAX_INLINE_DEPTH` — returns ``None`` (the chain is not a
    static path; the caller strikes the anchor)."""
    anchor = chain[0][1]
    final = anchor if end is None else end
    if chain[0][0] != 0:
        return None
    segments = []
    stack: List[Tuple[BasicBlock, int, CallInst]] = []
    cursor = 1
    block = anchor
    k = block.first_non_phi_index()
    budget = _LAYOUT_OP_BUDGET
    while True:
        insts = block.instructions
        start = k
        while True:
            if k >= len(insts):
                return None
            inst = insts[k]
            if isinstance(
                inst, (BranchInst, ReturnInst, UnreachableInst, PhiInst)
            ):
                break
            if isinstance(inst, CallInst):
                callee = inst.callee
                if (
                    isinstance(callee, Function)
                    and not callee.is_declaration
                    and not callee.name.startswith("carat.")
                ):
                    break
            k += 1
            budget -= 1
            if budget <= 0:
                return None
        inst = insts[k]
        if isinstance(inst, CallInst):
            if len(stack) >= _MAX_INLINE_DEPTH:
                return None
            segments.append((block, start, k, "call", inst))
            stack.append((block, k + 1, inst))
            block = inst.callee.entry
            k = block.first_non_phi_index()
            continue
        if isinstance(inst, ReturnInst):
            if not stack or k != len(insts) - 1:
                return None
            # The paired call rides along: the return's result lands in
            # the caller slot of the call that pushed this frame, which
            # the walk knows statically.
            segments.append((block, start, k, "return", (inst, stack[-1][2])))
            block, k, _call = stack.pop()
            continue
        if not isinstance(inst, BranchInst) or k != len(insts) - 1:
            return None
        depth = len(stack)
        if cursor < len(chain):
            want_depth, target = chain[cursor]
            cursor += 1
            if want_depth != depth:
                return None
        else:
            if depth != 0:
                return None
            target = final
        if not any(t is target for t in inst.targets):
            return None
        segments.append((block, start, k, "term", (inst, target)))
        if cursor >= len(chain) and target is final and depth == 0:
            return segments
        block = target
        k = target.first_non_phi_index()


def _trace_guard_tag(inst: CallInst) -> Optional[tuple]:
    """The coverage tag a guard generates *at run time*.  Stricter than
    the static pass: only constant-size address tags participate — a
    dynamic size folds to 0 in the tag, and ``covered`` treats 0 as
    "any size suffices", which is unsound when the actual size varies."""
    tag = guard_tag(inst)
    if tag is None:
        return None
    if tag[0] == "addr" and not isinstance(inst.args[1], ConstantInt):
        return None
    return tag


def _covering_index(available: Dict[tuple, int], tag: tuple) -> Optional[int]:
    """Specialization-cell index of an available guard covering ``tag``."""
    for seen, j in available.items():
        if guard_covered((seen,), tag):
            return j
    return None


def _apply_kills(available: Dict[tuple, int], inst: Instruction) -> None:
    """Runtime availability kills, strictly stronger than the static
    pass's: *any* alloca clears everything (it moves SP out from under
    frame tags, and the static pass's is-static exemption relies on
    whole-function placement the trace cannot see), and defining an SSA
    id kills address tags keyed on it — on a trace, the same block can
    repeat (nested loop unrolled into the chain), so "SSA values are
    never redefined" does not hold for slot contents."""
    if isinstance(inst, AllocaInst):
        available.clear()
        return
    key = id(inst)
    dead = [t for t in available if t[0] == "addr" and t[1] == key]
    for t in dead:
        del available[t]


# ----------------------------------------------------------------------
# Superblock compilation
# ----------------------------------------------------------------------


def _build_trace(
    code: ModuleCode,
    chain: List[Tuple[int, BasicBlock]],
    specialize: bool,
    mech_name: str,
    is_carat: bool,
    has_tier: bool,
    end: Optional[BasicBlock] = None,
) -> Optional[_TraceCode]:
    """Compile one recorded chain into a :class:`_TraceCode`, or ``None``
    if the chain is not linearizable.

    With ``end`` set the result is a *linear side trace*: a one-shot run
    of the chain that finishes by entering ``end`` — a block that
    already has an installed trace — and returning to the dispatch loop,
    which chains straight into that trace.  Side traces compile the hot
    off-trace paths of a parent trace (its side-exit targets), so
    workloads with data-dependent branches stay in compiled code instead
    of bridging each divergence through the block tier.

    The generated source inlines the same per-instruction templates
    fastexec specializes (same expressions, same charge order, same
    error paths) minus the per-op dispatch: one ``while True:`` walks the
    segments :func:`_layout` derives from the chain, each becoming a
    ``try:`` region whose ``steps`` / ``instructions`` are batched at its
    control op.  Tick and pause checks are emitted only after terminator
    segments (branches and returns — the safepoints of both other
    engines), never after calls, so safepoint alignment is preserved
    exactly.  Call and return segments end in an inlined copy of the
    block tier's call / return op — the real frame push/pop, with the
    same charges and error states — after which the generated code
    rebinds its ``frame`` / ``values`` locals to ``interp.frames[-1]``;
    guard availability is cleared at those boundaries (the stack pointer
    and the live slot dict both change).  The ``except BaseException``
    reconciler re-derives how many ops of the segment completed from
    ``frame.index`` — which is kept current before every op precisely so
    faults, CoW retries, and register snapshots see the same frame state
    the block tier would show.
    """
    segments = _layout(chain, end)
    if segments is None:
        return None

    w = _W()
    ns: Dict[str, object] = {}
    block_names: Dict[int, str] = {}

    def bref(block: BasicBlock) -> str:
        name = block_names.get(id(block))
        if name is None:
            name = f"_blk{len(block_names)}"
            block_names[id(block)] = name
            ns[name] = block
            ns["_ops" + name[4:]] = code.ops_by_block[id(block)]
        return name

    def expr(value: Value, ens: Dict[str, object], tagstr: str) -> str:
        # Same contract as fastexec's _expr, except globals inline as one
        # probe of the instantiation-bound globals_map (move transactions
        # patch that dict in place, so the probe always sees the current
        # address) instead of a closure call per evaluation.  A missing
        # global would surface as the generic undefined-operand error —
        # the loader lays out every module global, so that path is
        # unreachable in practice.
        if isinstance(value, GlobalVariable):
            name = f"_n{tagstr}"
            ens[name] = value.name
            return f"_gm[{name}]"
        return _expr(value, ens, tagstr)

    tag = 0
    spec_count = 0
    guard_count = 0
    available: Dict[tuple, int] = {}

    if mech_name == "mpx":
        mc = " and _mech._bound is _sc.region"
    elif mech_name == "if_tree":
        mc = " and (_mech.stride_hint or _mech._last_leaf == _sc.leaf)"
    else:
        mc = ""

    def undef(ind: int, operands, t: int) -> None:
        ns[f"_v{t}"] = tuple(operands)
        w.line(ind, "except KeyError:")
        w.line(ind + 1, f"_raise_undefined(interp, values, *_v{t})")

    def fallback(block: BasicBlock, k: int) -> None:
        # The block tier's compiled op, verbatim: it charges its own
        # costs and handles its own errors, so parity is free.
        nonlocal tag
        t = tag
        tag += 1
        ns[f"_op{t}"] = code.ops_by_block[id(block)][k][0]
        w.line(3, f"_op{t}(interp, frame)")

    def emit_tier(ind: int) -> None:
        # Inlined Interpreter._charge_tier; adding a possibly-zero cost
        # unconditionally is value-identical to its `if extra:` guard.
        if not has_tier:
            return
        w.line(ind, "if _a < _tb:")
        w.line(ind + 1, "stats.fast_tier_accesses += 1")
        w.line(ind + 1, "stats.cycles += _cft")
        w.line(ind + 1, "stats.tier_cycles += _cft")
        w.line(ind, "else:")
        w.line(ind + 1, "stats.slow_tier_accesses += 1")
        w.line(ind + 1, "stats.cycles += _cst")
        w.line(ind + 1, "stats.tier_cycles += _cst")

    def emit_hit(ind: int) -> None:
        # The steady-state hit: replicate exactly what the generic path
        # would have charged and written (guards_executed, guard_cycles
        # on both stats objects, the if-tree leaf predictor), minus the
        # call.  `guard_checks_elided` is the only extra write, and it
        # is an engine-descriptive counter outside the parity set.
        if mech_name == "if_tree":
            w.line(ind, "_mech._last_leaf = _sc.leaf")
        w.line(ind, "_rs.guards_executed += 1")
        w.line(ind, "_gc = _sc.cycles")
        w.line(ind, "_rs.guard_cycles += _gc")
        w.line(ind, "stats.guard_cycles += _gc")
        w.line(ind, "stats.cycles += _gc")
        w.line(ind, "stats.guard_checks_elided += 1")

    def emit_guard_access(inst: CallInst, name: str) -> None:
        nonlocal tag, spec_count
        t = tag
        tag += 1
        site = code.guard_site_of[id(inst)]
        access = "read" if name == GUARD_LOAD else "write"
        addr_e = expr(inst.args[0], ns, f"{t}a")
        size_e = expr(inst.args[1], ns, f"{t}s")
        tg = _trace_guard_tag(inst)
        jdom = _covering_index(available, tg) if tg is not None else None
        w.line(3, "stats.cycles += _ci")
        if jdom is not None and mech_name == "binary_search":
            # Full elision: the dominating guard ran this iteration on
            # the same (unredefined) address with a covering size and
            # permission, under this generation; binary search charges
            # by region count alone, so neither the operands nor the
            # bounds need re-checking.
            w.line(3, f"_sc = _spec{jdom}")
            w.line(3, "if _sc.gen == _regions.version and not _windows:")
            emit_hit(4)
            w.line(3, "else:")
            w.line(4, "try:")
            w.line(5, f"_a = int({addr_e})")
            w.line(5, f"_s = int({size_e})")
            undef(4, (inst.args[0], inst.args[1]), t)
            w.line(4, f"_gc = _rt.guard_access(_a, _s, '{access}', _cells[{site}])")
            w.line(4, "stats.guard_cycles += _gc")
            w.line(4, "stats.cycles += _gc")
            available.setdefault(tg, jdom)
            return
        w.line(3, "try:")
        w.line(4, f"_a = int({addr_e})")
        w.line(4, f"_s = int({size_e})")
        undef(3, (inst.args[0], inst.args[1]), t)
        if jdom is not None:
            # Predictor-dependent mechanisms keep the bounds test (it is
            # what makes the hit provably steady) but share the
            # dominator's cell, inheriting its re-specializations.
            j = jdom
        else:
            j = spec_count
            spec_count += 1
        w.line(3, f"_sc = _spec{j}")
        w.line(
            3,
            "if _sc.gen == _regions.version and not _windows"
            f" and _sc.base <= _a < _sc.end and _a + _s <= _sc.end{mc}:",
        )
        emit_hit(4)
        w.line(3, "else:")
        w.line(4, f"_gc = _rt.guard_access(_a, _s, '{access}', _cells[{site}])")
        w.line(4, "stats.guard_cycles += _gc")
        w.line(4, "stats.cycles += _gc")
        if jdom is None:
            w.line(4, "if _sc.gen != _regions.version:")
            w.line(
                5,
                f"_respec(_sc, _cells[{site}], _regions, _mech, "
                f"'{access}', stats, _tracer)",
            )
        if tg is not None:
            available.setdefault(tg, j)

    def emit_guard_call(inst: CallInst) -> None:
        nonlocal tag, spec_count
        t = tag
        tag += 1
        site = code.guard_site_of[id(inst)]
        size_e = expr(inst.args[0], ns, f"{t}s")
        tg = _trace_guard_tag(inst)
        # A zero-size frame probes exactly the stack pointer, which can
        # sit one past the region the dominator validated — find() would
        # miss there, so never elide it blindly.
        if tg is not None and tg[1] < 1:
            jdom = None
        else:
            jdom = _covering_index(available, tg) if tg is not None else None
        w.line(3, "stats.cycles += _ci")
        if jdom is not None and mech_name == "binary_search":
            size_lit = inst.args[0].value  # tag requires a constant
            w.line(3, f"_sc = _spec{jdom}")
            w.line(3, "if _sc.gen == _regions.version and not _windows:")
            emit_hit(4)
            w.line(3, "else:")
            w.line(4, f"_gc = _rt.guard_call(interp.sp, {size_lit}, _cells[{site}])")
            w.line(4, "stats.guard_cycles += _gc")
            w.line(4, "stats.cycles += _gc")
            available.setdefault(tg, jdom)
            return
        w.line(3, "try:")
        w.line(4, f"_s = int({size_e})")
        undef(3, (inst.args[0],), t)
        w.line(3, "_a = interp.sp - _s")
        if jdom is not None:
            j = jdom
        else:
            j = spec_count
            spec_count += 1
        w.line(3, f"_sc = _spec{j}")
        w.line(
            3,
            "if _sc.gen == _regions.version and not _windows"
            f" and _sc.base <= _a < _sc.end and _a + _s <= _sc.end{mc}:",
        )
        emit_hit(4)
        w.line(3, "else:")
        w.line(4, f"_gc = _rt.guard_call(interp.sp, _s, _cells[{site}])")
        w.line(4, "stats.guard_cycles += _gc")
        w.line(4, "stats.cycles += _gc")
        if jdom is None:
            w.line(4, "if _sc.gen != _regions.version:")
            w.line(
                5,
                f"_respec(_sc, _cells[{site}], _regions, _mech, "
                f"'write', stats, _tracer)",
            )
        if tg is not None:
            available.setdefault(tg, j)

    def emit_guard_range(inst: CallInst) -> None:
        nonlocal tag, spec_count
        t = tag
        tag += 1
        site = code.guard_site_of[id(inst)]
        args = inst.args
        addr_e = expr(args[0], ns, f"{t}a")
        len_e = expr(args[1], ns, f"{t}n")
        w.line(3, "stats.cycles += _ci")
        w.line(3, "try:")
        w.line(4, f"_a = int({addr_e})")
        w.line(4, f"_s = int({len_e})")
        if len(args) > 2 and not isinstance(args[2], ConstantInt):
            flag_e = expr(args[2], ns, f"{t}f")
            w.line(4, f"_c = 'write' if int({flag_e}) else 'read'")
            acc = "_c"
            undef(3, (args[0], args[1], args[2]), t)
        else:
            if len(args) > 2:
                acc = "'write'" if args[2].value else "'read'"
            else:
                acc = "'read'"
            undef(3, (args[0], args[1]), t)
        j = spec_count
        spec_count += 1
        w.line(3, f"_sc = _spec{j}")
        w.line(
            3,
            "if 0 < _s and _sc.gen == _regions.version and not _windows"
            f" and {acc} == _sc.access"
            f" and _sc.base <= _a < _sc.end and _a + _s <= _sc.end{mc}:",
        )
        emit_hit(4)
        w.line(3, "else:")
        w.line(4, f"_gc = _rt.guard_range(_a, _s, {acc}, _cells[{site}])")
        w.line(4, "stats.guard_cycles += _gc")
        w.line(4, "stats.cycles += _gc")
        w.line(4, "if 0 < _s and _sc.gen != _regions.version:")
        w.line(
            5,
            f"_respec(_sc, _cells[{site}], _regions, _mech, "
            f"{acc}, stats, _tracer)",
        )

    def emit_op(block: BasicBlock, k: int, inst: Instruction) -> None:
        nonlocal tag, guard_count
        if isinstance(inst, CallInst):
            callee = inst.callee
            if isinstance(callee, Function) and callee.name.startswith("carat."):
                name = callee.name
                if name in (GUARD_LOAD, GUARD_STORE, GUARD_CALL, GUARD_RANGE):
                    guard_count += 1
                    if specialize:
                        if name in (GUARD_LOAD, GUARD_STORE):
                            emit_guard_access(inst, name)
                        elif name == GUARD_CALL:
                            emit_guard_call(inst)
                        else:
                            emit_guard_range(inst)
                        return
            elif (
                isinstance(callee, Function)
                and callee.is_declaration
                and callee.name in _MATH_BUILTINS
                and len(inst.args) == 1
                and not inst.type.is_void
            ):
                # Pure unary math builtin: same charge order as the block
                # tier's builtin_op (_ci, calls, evaluate, compute — with
                # _exec_builtin's ValueError-to-nan — then _cost_call).
                t = tag
                tag += 1
                ns[f"_fn{t}"] = _MATH_BUILTINS[callee.name]
                arg = expr(inst.args[0], ns, f"{t}a")
                w.line(3, "stats.cycles += _ci")
                w.line(3, "stats.calls += 1")
                w.line(3, "try:")
                w.line(4, f"_a = float({arg})")
                undef(3, (inst.args[0],), t)
                w.line(3, "try:")
                w.line(4, f"values[{id(inst)}] = float(_fn{t}(_a))")
                w.line(3, "except ValueError:")
                w.line(4, f"values[{id(inst)}] = _nan")
                w.line(3, "stats.cycles += _cc")
                return
            fallback(block, k)
            return
        t = tag
        tag += 1
        key = id(inst)
        if isinstance(inst, BinaryInst):
            ty = inst.type
            op = inst.opcode
            if isinstance(ty, IntType):
                if isinstance(inst.lhs, ConstantInt) and isinstance(
                    inst.rhs, ConstantInt
                ):
                    folded = fold_int_binop(op, ty, inst.lhs.value, inst.rhs.value)
                    if folded is not None:
                        w.line(3, "stats.cycles += _ci")
                        w.line(3, f"values[{key}] = {folded}")
                        return
                symbol = _INT_OP_SYMBOL.get(op)
                if symbol is None:
                    # Division/remainder/shift by a *constant* that can
                    # never fault inlines with fold_int_binop's exact
                    # expressions (including the float-division quotient
                    # for sign-mismatched sdiv/srem); a variable or
                    # faulting divisor keeps the shared fault path.
                    if isinstance(inst.rhs, ConstantInt):
                        b = inst.rhs.value
                        calc = None
                        if op in ("sdiv", "srem") and b != 0:
                            cond = "_m < 0" if b > 0 else "_m >= 0"
                            quot = f"int(_m / ({b})) if {cond} else _m // ({b})"
                            if op == "sdiv":
                                calc = [f"_m = {quot}"]
                            else:
                                calc = [f"_b = {quot}", f"_m = _m - _b * ({b})"]
                        elif op in ("udiv", "urem") and b != 0:
                            ub = b & ty.max_unsigned
                            sym = "//" if op == "udiv" else "%"
                            calc = [f"_m = (_m & {ty.max_unsigned}) {sym} {ub}"]
                        elif op == "shl" and 0 <= b < ty.bits:
                            calc = [f"_m = _m << {b}"]
                        elif op == "lshr" and 0 <= b < ty.bits:
                            calc = [f"_m = (_m & {ty.max_unsigned}) >> {b}"]
                        elif op == "ashr" and 0 <= b < ty.bits:
                            calc = [f"_m = _m >> {b}"]
                        if calc is not None:
                            lhs = expr(inst.lhs, ns, f"{t}a")
                            w.line(3, "stats.cycles += _ci")
                            w.line(3, "try:")
                            w.line(4, f"_m = int({lhs})")
                            undef(3, (inst.lhs,), t)
                            for line in calc:
                                w.line(3, line)
                            w.line(3, f"_m = _m & {ty.max_unsigned}")
                            w.line(
                                3,
                                f"values[{key}] = _m - {ty.max_unsigned + 1}"
                                f" if _m > {ty.max_signed} else _m",
                            )
                            return
                    elif op in (
                        "sdiv", "srem", "udiv", "urem", "shl", "lshr", "ashr"
                    ):
                        # Variable divisor/shift: inline the same
                        # expressions with fold_int_binop's fault checks
                        # and int_op's exact error message.
                        lhs = expr(inst.lhs, ns, f"{t}a")
                        rhs = expr(inst.rhs, ns, f"{t}b")
                        w.line(3, "stats.cycles += _ci")
                        w.line(3, "try:")
                        w.line(4, f"_a = int({lhs})")
                        w.line(4, f"_b = int({rhs})")
                        undef(3, (inst.lhs, inst.rhs), t)
                        if op in ("sdiv", "srem", "udiv", "urem"):
                            w.line(3, "if _b == 0:")
                        else:
                            w.line(3, f"if not 0 <= _b < {ty.bits}:")
                        w.line(
                            4,
                            f"raise _ierr(f'integer fault: {op} "
                            "{_a}, {_b} (division by zero or "
                            "invalid shift)')",
                        )
                        if op in ("sdiv", "srem"):
                            quot = (
                                "int(_a / _b) if (_a < 0) != (_b < 0)"
                                " else _a // _b"
                            )
                            if op == "sdiv":
                                w.line(3, f"_m = {quot}")
                            else:
                                w.line(3, f"_c = {quot}")
                                w.line(3, "_m = _a - _c * _b")
                        elif op == "udiv":
                            w.line(
                                3,
                                f"_m = (_a & {ty.max_unsigned})"
                                f" // (_b & {ty.max_unsigned})",
                            )
                        elif op == "urem":
                            w.line(
                                3,
                                f"_m = (_a & {ty.max_unsigned})"
                                f" % (_b & {ty.max_unsigned})",
                            )
                        elif op == "shl":
                            w.line(3, "_m = _a << _b")
                        elif op == "lshr":
                            w.line(3, f"_m = (_a & {ty.max_unsigned}) >> _b")
                        else:
                            w.line(3, "_m = _a >> _b")
                        w.line(3, f"_m = _m & {ty.max_unsigned}")
                        w.line(
                            3,
                            f"values[{key}] = _m - {ty.max_unsigned + 1}"
                            f" if _m > {ty.max_signed} else _m",
                        )
                        return
                    fallback(block, k)  # unknown int op: shared fault path
                    return
                lhs = expr(inst.lhs, ns, f"{t}a")
                rhs = expr(inst.rhs, ns, f"{t}b")
                w.line(3, "stats.cycles += _ci")
                w.line(3, "try:")
                w.line(4, f"_m = (int({lhs}) {symbol} int({rhs})) & {ty.max_unsigned}")
                undef(3, (inst.lhs, inst.rhs), t)
                w.line(
                    3,
                    f"values[{key}] = _m - {ty.max_unsigned + 1}"
                    f" if _m > {ty.max_signed} else _m",
                )
                return
            if op in ("fadd", "fsub", "fmul"):
                symbol = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
                lhs = expr(inst.lhs, ns, f"{t}a")
                rhs = expr(inst.rhs, ns, f"{t}b")
                w.line(3, "stats.cycles += _ci")
                w.line(3, "try:")
                w.line(4, f"values[{key}] = float({lhs}) {symbol} float({rhs})")
                undef(3, (inst.lhs, inst.rhs), t)
                return
            if op == "fdiv":
                lhs = expr(inst.lhs, ns, f"{t}a")
                rhs = expr(inst.rhs, ns, f"{t}b")
                w.line(3, "stats.cycles += _ci")
                w.line(3, "try:")
                w.line(4, f"_a = float({lhs})")
                w.line(4, f"_b = float({rhs})")
                undef(3, (inst.lhs, inst.rhs), t)
                w.line(3, "if _b == 0.0:")
                w.line(
                    4,
                    f"values[{key}] = _inf if _a > 0"
                    " else (-_inf if _a < 0 else _nan)",
                )
                w.line(3, "else:")
                w.line(4, f"values[{key}] = _a / _b")
                return
            fallback(block, k)  # frem / unknown float op
            return
        if isinstance(inst, ICmpInst):
            pred = inst.predicate
            symbol = _ICMP_SIGNED.get(pred)
            lhs = expr(inst.lhs, ns, f"{t}a")
            rhs = expr(inst.rhs, ns, f"{t}b")
            if symbol is not None:
                compare = f"int({lhs}) {symbol} int({rhs})"
            else:
                symbol = _ICMP_UNSIGNED.get(pred)
                if symbol is None:
                    fallback(block, k)
                    return
                bits = (
                    inst.lhs.type.bits
                    if isinstance(inst.lhs.type, IntType)
                    else 64
                )
                mask = (1 << bits) - 1
                compare = f"(int({lhs}) & {mask}) {symbol} (int({rhs}) & {mask})"
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            w.line(4, f"values[{key}] = 1 if {compare} else 0")
            undef(3, (inst.lhs, inst.rhs), t)
            return
        if isinstance(inst, FCmpInst):
            symbol = _FCMP_SYMBOL[inst.predicate]
            lhs = expr(inst.lhs, ns, f"{t}a")
            rhs = expr(inst.rhs, ns, f"{t}b")
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            w.line(4, f"_a = float({lhs})")
            w.line(4, f"_b = float({rhs})")
            undef(3, (inst.lhs, inst.rhs), t)
            w.line(
                3,
                f"values[{key}] = 0 if (_a != _a or _b != _b)"
                f" else (1 if _a {symbol} _b else 0)",
            )
            return
        if isinstance(inst, CastInst):
            op = inst.opcode
            value = expr(inst.value, ns, f"{t}v")
            if op in ("bitcast", "ptrtoint", "inttoptr", "sext"):
                body = [f"values[{key}] = int({value})"]
            elif op == "trunc":
                ty = inst.type
                body = [
                    f"_m = int({value}) & {ty.max_unsigned}",
                    f"values[{key}] = _m - {ty.max_unsigned + 1}"
                    f" if _m > {ty.max_signed} else _m",
                ]
            elif op == "zext":
                body = [
                    f"values[{key}] = int({value})"
                    f" & {inst.value.type.max_unsigned}"
                ]
            elif op == "sitofp":
                body = [f"values[{key}] = float(int({value}))"]
            elif op == "fptosi":
                # fastexec's fptosi_op: nan/inf collapse to 0, else
                # truncate and wrap to the target width (same mask/span
                # arithmetic as IntType.wrap).
                ty = inst.type
                body = [
                    f"_a = float({value})",
                    "_m = 0 if (_a != _a or _a == _inf or _a == -_inf)"
                    f" else int(_a) & {ty.max_unsigned}",
                    f"values[{key}] = _m - {ty.max_unsigned + 1}"
                    f" if _m > {ty.max_signed} else _m",
                ]
            else:
                fallback(block, k)  # unknown cast
                return
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            for line in body:
                w.line(4, line)
            undef(3, (inst.value,), t)
            return
        if isinstance(inst, GEPInst):
            const_offset, dynamic, bad_type = _gep_plan(inst)
            if bad_type is not None:
                fallback(block, k)  # lazy reference fault, exact wording
                return
            operands: List[Value] = [inst.pointer]
            terms = [f"int({expr(inst.pointer, ns, f'{t}p')})"]
            if const_offset:
                terms.append(str(const_offset))
            for di, (index, stride) in enumerate(dynamic):
                operands.append(index)
                term = f"int({expr(index, ns, f'{t}i{di}')})"
                if stride != 1:
                    term += f" * {stride}"
                terms.append(term)
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            w.line(4, f"values[{key}] = {' + '.join(terms)}")
            undef(3, tuple(operands), t)
            return
        if isinstance(inst, LoadInst):
            ty = inst.type
            size = size_of(ty)
            pointer = expr(inst.pointer, ns, f"{t}p")
            if isinstance(ty, IntType):
                decode = [
                    "_m = _ifb(_v, 'little')",
                    f"values[{key}] = _m - {ty.max_unsigned + 1}"
                    f" if _m > {ty.max_signed} else _m",
                ]
            elif isinstance(ty, FloatType):
                ns[f"_up{t}"] = struct.Struct(
                    "<d" if ty.bits == 64 else "<f"
                ).unpack
                decode = [f"values[{key}] = _up{t}(_v)[0]"]
            elif isinstance(ty, PointerType):
                decode = [f"values[{key}] = _ifb(_v, 'little')"]
            else:
                fallback(block, k)
                return
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            w.line(4, f"_a = int({pointer})")
            undef(3, (inst.pointer,), t)
            w.line(3, "stats.cycles += _cm")
            w.line(3, "stats.loads += 1")
            emit_tier(3)
            w.line(3, "if interp.access_probe is not None:")
            w.line(4, f"interp.access_probe(_a, {size}, 'read')")
            if is_carat:
                # read_bytes, unrolled: bounds check (delegating to the
                # real accessor for its exact error), bandwidth
                # accounting, slice.  An mmap slice decodes the same as
                # the bytes copy read_bytes returns.
                w.line(3, f"if _a < 0 or _a + {size} > _pms:")
                w.line(4, f"_rdb(_a, {size})")
                w.line(3, f"_pm.bytes_read += {size}")
                w.line(3, f"_v = _pmd[_a:_a + {size}]")
            else:
                w.line(3, f"_v = _rmem(_a, {size}, 'read')")
            for line in decode:
                w.line(3, line)
            return
        if isinstance(inst, StoreInst):
            ty = inst.value.type
            size = size_of(ty)
            pointer = expr(inst.pointer, ns, f"{t}p")
            value = expr(inst.value, ns, f"{t}v")
            if isinstance(ty, IntType):
                encode = (
                    f"(int(_v) & {ty.max_unsigned}).to_bytes({size}, 'little')"
                )
            elif isinstance(ty, FloatType):
                ns[f"_pa{t}"] = struct.Struct(
                    "<d" if ty.bits == 64 else "<f"
                ).pack
                encode = f"_pa{t}(float(_v))"
            elif isinstance(ty, PointerType):
                encode = f"(int(_v) & {_MASK64}).to_bytes(8, 'little')"
            else:
                fallback(block, k)
                return
            w.line(3, "stats.cycles += _ci")
            w.line(3, "try:")
            w.line(4, f"_a = int({pointer})")
            w.line(4, f"_v = {value}")
            undef(3, (inst.pointer, inst.value), t)
            w.line(3, "stats.cycles += _cm")
            w.line(3, "stats.stores += 1")
            emit_tier(3)
            w.line(3, "if interp.access_probe is not None:")
            w.line(4, f"interp.access_probe(_a, {size}, 'write')")
            if is_carat:
                # write_bytes, unrolled, same shape as the load's
                # read_bytes; the encoders always produce exactly
                # ``size`` bytes, so the slice assignment never resizes.
                w.line(3, f"_b = {encode}")
                w.line(3, f"if _a < 0 or _a + {size} > _pms:")
                w.line(4, "_wrb(_a, _b)")
                w.line(3, f"_pm.bytes_written += {size}")
                w.line(3, f"_pmd[_a:_a + {size}] = _b")
            else:
                w.line(3, f"_wmem(_a, {encode})")
            return
        # select (operand-error ordering), alloca (moves SP), tracking
        # intrinsics, builtins: the block tier's op is already optimal
        # enough and exactly right.
        fallback(block, k)

    def emit_edge_inline(src: BasicBlock, dst: BasicBlock, ind: int) -> None:
        nonlocal tag
        t = tag
        tag += 1
        moves = [(id(phi), phi.incoming_for_block(src)) for phi in dst.phis()]
        if moves:
            exprs = [
                expr(val, ns, f"{t}h{k2}") for k2, (_pid, val) in enumerate(moves)
            ]
            w.line(ind, "try:")
            for k2, e in enumerate(exprs):
                w.line(ind + 1, f"_hv{k2} = {e}")
            ns[f"_pv{t}"] = tuple(val for _pid, val in moves)
            w.line(ind, "except KeyError:")
            w.line(ind + 1, f"_raise_undefined(interp, values, *_pv{t})")
            nmv = len(moves)
            if nmv > 1:
                w.line(ind, f"stats.cycles += _ci * {nmv}")
            else:
                w.line(ind, "stats.cycles += _ci")
            w.line(ind, f"stats.instructions += {nmv}")
            for k2, (pid, _val) in enumerate(moves):
                w.line(ind, f"values[{pid}] = _hv{k2}")
        w.line(ind, f"frame.prev_block = {bref(src)}")
        w.line(ind, f"frame.block = {bref(dst)}")
        w.line(ind, f"frame.ops = _ops{bref(dst)[4:]}")
        w.line(ind, f"frame.index = {dst.first_non_phi_index()}")

    def emit_terminator(
        si: int, block: BasicBlock, term: BranchInst, nxt: BasicBlock
    ) -> Optional[str]:
        nonlocal tag
        w.line(3, "stats.cycles += _ci")
        if not term.is_conditional:
            emit_edge_inline(block, nxt, 3)
            return None
        t = tag
        tag += 1
        cexpr = expr(term.condition, ns, f"{t}c")
        w.line(3, "try:")
        w.line(4, f"_c = {cexpr}")
        undef(3, (term.condition,), t)
        on_true = term.targets[0] is nxt
        on_false = term.targets[1] is nxt
        if on_true and on_false:
            # Both arms land on the trace (same block); the condition was
            # still evaluated for error parity, its value is moot.
            emit_edge_inline(block, nxt, 3)
            return None
        off_target = term.targets[1] if on_true else term.targets[0]
        ns[f"_x{t}"] = _edge_enter(_Edge(code, block, off_target))
        ns[f"_e{si}"] = {
            "anchor": chain[0][1].name,
            "function": block.parent.name,
            "from": block.name,
            "to": off_target.name,
        }
        flag = f"_of{si}"
        if on_true:
            w.line(3, "if _c:")
            emit_edge_inline(block, nxt, 4)
            w.line(4, f"{flag} = False")
            w.line(3, "else:")
            w.line(4, f"_x{t}(interp, frame)")
            w.line(4, f"{flag} = True")
        else:
            w.line(3, "if _c:")
            w.line(4, f"_x{t}(interp, frame)")
            w.line(4, f"{flag} = True")
            w.line(3, "else:")
            emit_edge_inline(block, nxt, 4)
            w.line(4, f"{flag} = False")
        return flag

    def emit_call_inline(inst: CallInst) -> None:
        # fastexec's call_op, minus the closure and the entry-ops cell:
        # same charge order (depth check between the instruction and
        # call costs), same error states (undefined args raise before
        # the push), and a directly-slotted frame that is field-for-
        # field what _FastFrame(...) constructs, without the
        # constructor chain.
        nonlocal tag
        t = tag
        tag += 1
        callee = inst.callee
        ns["_FF"] = _FastFrame
        ns[f"_fu{t}"] = callee
        ns[f"_rt{t}"] = inst if not inst.type.is_void else None
        eb = bref(callee.entry)
        w.line(3, "stats.cycles += _ci")
        w.line(3, "stats.calls += 1")
        w.line(3, "if len(interp.frames) >= interp.max_call_depth:")
        w.line(
            4,
            "raise _ierr(f'call depth exceeded "
            f"({{interp.max_call_depth}}) calling @{callee.name}')",
        )
        w.line(3, "stats.cycles += _cc")
        w.line(3, "_nf = _FF.__new__(_FF)")
        w.line(3, f"_nf.function = _fu{t}")
        w.line(3, f"_nf.block = {eb}")
        w.line(3, "_nf.index = 0")
        w.line(3, "_nv = {}")
        w.line(3, "_nf.values = _nv")
        w.line(3, "_nf.sp_on_entry = interp.sp")
        w.line(3, f"_nf.result_target = _rt{t}")
        w.line(3, "_nf.prev_block = None")
        w.line(3, f"_nf.ops = _ops{eb[4:]}")
        if inst.args:
            w.line(3, "try:")
            for j, (formal, actual) in enumerate(
                zip(callee.args, inst.args)
            ):
                arg_e = expr(actual, ns, f"{t}a{j}")
                w.line(4, f"_nv[{id(formal)}] = {arg_e}")
            undef(3, tuple(inst.args), t)
        w.line(3, "interp.frames.append(_nf)")

    def emit_return_inline(inst: ReturnInst, call: CallInst) -> None:
        # fastexec's return_op, minus the closure: inside a trace the
        # popped frame is never the last (the matching call segment's
        # caller is below it), so the program-exit arm is statically
        # dead, and the result slot is the paired call's, known from
        # the layout walk.
        nonlocal tag
        t = tag
        tag += 1
        w.line(3, "stats.cycles += _ci")
        rv = inst.return_value
        if rv is not None:
            w.line(3, "try:")
            w.line(4, f"_v = {expr(rv, ns, f'{t}r')}")
            undef(3, (rv,), t)
        w.line(3, "interp.sp = frame.sp_on_entry")
        w.line(3, "interp.frames.pop()")
        if rv is not None and not call.type.is_void:
            w.line(3, f"interp.frames[-1].values[{id(call)}] = _v")

    w.line(0, "def trace(interp, frame, steps, max_steps):")
    w.line(1, "stats = interp.stats")
    w.line(1, "values = frame.values")
    w.line(1, "while True:")
    ci_line = "    " * 3 + "stats.cycles += _ci"
    for si, (block, start, end, kind, data) in enumerate(segments):
        insts = block.instructions
        w.line(2, "try:")
        mark = len(w.lines)
        for k in range(start, end):
            inst = insts[k]
            w.line(3, f"frame.index = {k + 1}")
            emit_op(block, k, inst)
            _apply_kills(available, inst)
        # Batch the uniform per-op base charge: every inline op opens
        # with exactly one top-level `stats.cycles += _ci` *before*
        # anything that can raise, so when the count matches the op
        # count (i.e. no fallback op charged internally), the sum can
        # be hoisted to the segment top and the fault reconciler below
        # subtracts the ops that never ran.  Mid-segment observers see
        # cycles only through the ops' own extra charges (memory, tier,
        # guard), which stay in place; ticks and pauses run at segment
        # boundaries, where the batched total is the exact total.
        n_ci = 0
        if end > start:
            body = w.lines[mark:]
            n_ci = body.count(ci_line)
            if n_ci == end - start and n_ci > 1:
                w.lines[mark:] = [ln for ln in body if ln != ci_line]
                w.lines.insert(mark, "    " * 3 + f"stats.cycles += {n_ci} * _ci")
            else:
                n_ci = 0
        w.line(3, f"frame.index = {end + 1}")
        exit_flag = None
        if kind == "term":
            term, target = data
            exit_flag = emit_terminator(si, block, term, target)
            # The on-trace edge assigned the target's phis: any
            # availability tag keyed on a phi's SSA id refers to the
            # previous iteration's value now.
            for phi in target.phis():
                pid = id(phi)
                for tg in [
                    tg
                    for tg in available
                    if tg[0] == "addr" and tg[1] == pid
                ]:
                    del available[tg]
        elif kind == "call":
            emit_call_inline(data)
        else:
            emit_return_inline(*data)
        w.line(2, "except BaseException:")
        if n_ci:
            # Un-charge the batched base cost of the body ops that never
            # ran: the faulting op (at frame.index - 1) and everything
            # before it did charge theirs in the reference engine.
            w.line(3, f"_done = frame.index - {start}")
            w.line(3, f"if _done < {n_ci}:")
            w.line(4, f"stats.cycles -= ({n_ci} - _done) * _ci")
        w.line(3, f"stats.instructions += frame.index - 1 - {start}")
        w.line(3, "raise")
        nops = end + 1 - start
        w.line(2, f"steps += {nops}")
        w.line(2, f"stats.instructions += {nops}")
        if kind != "term":
            # The frame just changed (push on call, pop on return):
            # rebind the locals every inlined template reads, and forget
            # guard availability — the stack pointer moved and the slot
            # dict is a different frame's.
            w.line(2, "frame = interp.frames[-1]")
            w.line(2, "values = frame.values")
            available.clear()
        if kind == "call":
            # A call is not a safepoint in either other engine: no tick,
            # no pause check.
            continue
        w.line(2, "if stats.instructions >= interp._next_tick:")
        w.line(3, "interp._next_tick = stats.instructions + interp.tick_interval")
        w.line(3, "_hook = interp.tick_hook")
        w.line(3, "if _hook is not None:")
        w.line(4, "_hook(interp)")
        if exit_flag is not None:
            w.line(2, f"if {exit_flag}:")
            w.line(3, "stats.trace_exits += 1")
            w.line(3, "if _tracer is not None and _tracer.fine:")
            w.line(4, f"_tracer.instant('trace.exit', 'trace', _e{si})")
            w.line(3, "return steps")
        w.line(2, "if steps >= max_steps:")
        w.line(3, "return steps")
    if end is not None:
        # Linear side trace: the closing edge just entered ``end`` (its
        # phis assigned, index at first_non_phi) — hand control back so
        # the dispatch loop chains into the trace installed there.
        w.line(2, "return steps")

    return _TraceCode(
        w.source(), ns, spec_count, len(chain), guard_count, specialize
    )


# ----------------------------------------------------------------------
# The trace-tier interpreter
# ----------------------------------------------------------------------


class TraceInterpreter(FastInterpreter):
    """The block tier plus a recording trace tier.

    Execution starts in the inherited fast dispatch loop.  Every block
    *entered through a branch* (i.e. every loop back-edge or join) bumps
    a hotness counter; at ``trace_threshold`` the block becomes an
    anchor and the next entry records the dynamic block chain until the
    anchor recurs, which is then compiled by :func:`_build_trace` and
    installed.  From then on, entering the anchor at a safepoint runs
    the compiled superblock until it side-exits, pauses at the step
    quota, or faults back to the block tier.  Side exits bump the
    hotness of the block they land on; at the threshold that block
    anchors a recording that may finish as a *linear* side trace the
    moment it re-reaches any traced block, so hot off-trace arms get
    compiled too and chain straight back into the loop trace.

    Compiled trace *code* is shared across interpreters of the same
    module (``ModuleCode.trace_codes``); the per-interpreter
    ``instantiate`` binds cost constants, guard cells, and fresh
    specialization cells, so tenants never see each other's generations.

    Limitations, by design: no tracing under an attached profiler (the
    profiled loop needs per-op cycle attribution, which batching
    destroys — ``run_steps`` falls back to the inherited profiled block
    tier), and no exit-ratio demotion (a compiled trace stays installed
    even if its side exits dominate; the side exits themselves are
    cheap, and the block tier it lands in is the engine everything else
    runs on anyway).
    """

    #: Block entries before a block is promoted to a trace anchor.
    trace_threshold = 16
    #: Longest chain a recording may span before it aborts (counted in
    #: branch-entered blocks; inlined callee entries ride along free).
    trace_max_blocks = 48

    def __init__(
        self,
        process: Process,
        kernel: Kernel,
        max_call_depth: int = 512,
        stack_range: Optional[Tuple[int, int]] = None,
        thread_id: int = 0,
    ) -> None:
        super().__init__(process, kernel, max_call_depth, stack_range, thread_id)
        self._hot: Dict[int, int] = {}
        self._traces: Dict[int, object] = {}
        self._trace_blacklist: set = set()
        self._trace_aborts: Dict[int, int] = {}
        self._recorder: Optional[_Recorder] = None

    def set_trace_tuning(
        self,
        threshold: Optional[int] = None,
        max_blocks: Optional[int] = None,
    ) -> None:
        """Override promotion threshold / chain cap (CLI plumbing)."""
        if threshold is not None:
            if threshold < 1:
                raise ValueError("trace threshold must be >= 1")
            self.trace_threshold = threshold
        if max_blocks is not None:
            if max_blocks < 1:
                raise ValueError("trace max blocks must be >= 1")
            self.trace_max_blocks = max_blocks

    # -- promotion / recording ------------------------------------------

    def _note_hot_entry(self, frame, from_exit: bool = False) -> None:
        key = id(frame.block)
        if key in self._trace_blacklist:
            return
        count = self._hot.get(key, 0) + 1
        if count >= self.trace_threshold:
            self._hot[key] = 0
            self._recorder = _Recorder(
                frame, frame.block, len(self.frames), from_exit
            )
        else:
            self._hot[key] = count

    def _note_recorded_entry(self, frame):
        """One branch-entered block while recording; returns the
        installed trace closure when the recording just closed, else
        ``None``.

        Entries are recorded with their frame depth relative to the
        anchor frame: calls push frames without notifying (call ops are
        not terminators), so a callee's interior branches arrive at
        depth > 0 and the layout walker re-derives the call/return
        structure statically.  A negative depth means the anchor frame
        returned (the path escaped the loop); depth 0 with a different
        frame means the stack sank and re-grew through foreign calls.
        Both abort — as does recursion past the inline cap, which would
        otherwise unroll without bound."""
        rec = self._recorder
        depth = len(self.frames) - rec.base_len
        if depth < 0 or depth > _MAX_INLINE_DEPTH:
            self._abort_recording()
            return None
        if depth == 0:
            if frame is not rec.frame:
                self._abort_recording()
                return None
            if frame.block is rec.anchor:
                self._recorder = None
                return self._finish_trace(rec)
            if rec.from_exit:
                fn_end = self._traces.get(id(frame.block))
                if fn_end is not None:
                    # A side-exit recording reached an already-traced
                    # block: finish as a linear side trace ending there,
                    # and chain into that block's trace right now (the
                    # new trace is anchored at the exit target, not
                    # here).
                    self._recorder = None
                    self._finish_trace(rec, end=frame.block)
                    return fn_end
        if len(rec.chain) >= self.trace_max_blocks:
            self._abort_recording()
            return None
        rec.chain.append((depth, frame.block))
        return None

    def _abort_recording(self) -> None:
        rec = self._recorder
        self._recorder = None
        if rec is not None:
            self._strike(id(rec.anchor))

    def _strike(self, key: int) -> None:
        count = self._trace_aborts.get(key, 0) + 1
        self._trace_aborts[key] = count
        if count >= _ABORT_LIMIT:
            self._trace_blacklist.add(key)

    def _finish_trace(self, rec: _Recorder, end: Optional[BasicBlock] = None):
        runtime = self.process.runtime
        tracer = runtime.tracer if runtime is not None else None
        # Specialization bakes per-site region parameters; it must sit
        # out when there is nothing to bake (no runtime), when the
        # mechanism has no steady-state cost to bake, when a
        # fine-detail tracer expects one instant per guard check (the
        # specialized hit emits none), or in safety mode — the
        # specialized hit elides the runtime call that performs the
        # liveness check, so safety falls back to generic guards.
        specialize = (
            runtime is not None
            and runtime.region_cache_enabled
            and runtime.guard.name in _SPECIALIZABLE
            and not (tracer is not None and tracer.fine)
            and runtime.safety is None
        )
        mech_name = runtime.guard.name if specialize else ""
        has_tier = self._tier_boundary is not None
        anchor_key = id(rec.anchor)
        key = (
            anchor_key,
            tuple((d, id(b)) for d, b in rec.chain[1:]),
            specialize,
            mech_name,
            self.is_carat,
            has_tier,
            0 if end is None else id(end),
        )
        tcode = self._code.trace_codes.get(key, _UNBUILT)
        if tcode is _UNBUILT:
            try:
                tcode = _build_trace(
                    self._code, rec.chain, specialize, mech_name,
                    self.is_carat, has_tier, end,
                )
            except Exception:
                tcode = None
            self._code.trace_codes[key] = tcode  # None caches the reject
        if tcode is None:
            self._strike(anchor_key)
            return None
        fn = tcode.instantiate(self)
        self._traces[anchor_key] = fn
        self.stats.traces_compiled += 1
        if tracer is not None:
            tracer.instant(
                "trace.compile", "trace",
                {
                    "anchor": rec.anchor.name,
                    "function": rec.anchor.parent.name,
                    "blocks": tcode.n_blocks,
                    "guards": tcode.n_guards,
                    "specialized": tcode.specialize,
                    "inline_depth": max(d for d, _b in rec.chain),
                    "linear": end is not None,
                },
            )
        return fn

    # -- dispatch --------------------------------------------------------

    def run_steps(self, max_steps: int) -> str:
        """The fast dispatch loop plus the trace tier at safepoints.

        Identical contract to :meth:`FastInterpreter.run_steps`; the only
        added work per terminator is one dict probe.  Under a profiler
        the inherited per-op profiled loop runs instead (traces batch
        step accounting, which would wreck per-function attribution).
        """
        if self.profiler is not None:
            return self._run_steps_profiled(max_steps)
        steps = 0
        at_safepoint = False
        frames = self.frames
        stats = self.stats
        hard_stop = max_steps + 100_000
        traces = self._traces
        while frames:
            if steps >= max_steps and (at_safepoint or steps >= hard_stop):
                break  # pause at a safepoint (or give up on alignment)
            frame = frames[-1]
            index = frame.index
            try:
                op, is_terminator = frame.ops[index]
            except IndexError:
                raise InterpError(
                    f"fell off block %{frame.block.name} in "
                    f"@{frame.function.name}"
                ) from None
            frame.index = index + 1
            try:
                op(self, frame)
            except ExitProgram as exit_request:
                self.exit_code = exit_request.code
                frames.clear()
                break
            steps += 1
            stats.instructions += 1
            at_safepoint = is_terminator
            if is_terminator:
                if stats.instructions >= self._next_tick:
                    self._next_tick = stats.instructions + self.tick_interval
                    if self.tick_hook is not None:
                        self.tick_hook(self)
                if frames and frames[-1] is frame:
                    if self._recorder is not None:
                        fn = self._note_recorded_entry(frame)
                    else:
                        fn = traces.get(id(frame.block))
                        if fn is None:
                            self._note_hot_entry(frame)
                    if fn is not None:
                        try:
                            while (
                                fn is not None
                                and steps < max_steps
                                and frames
                                and frames[-1] is frame
                            ):
                                steps = fn(self, frame, steps, max_steps)
                                fn = traces.get(id(frame.block))
                                if (
                                    fn is None
                                    and steps < max_steps
                                    and self._recorder is None
                                    and frames
                                    and frames[-1] is frame
                                ):
                                    # A depth-0 side exit to an untraced
                                    # block: exits bypass the terminator
                                    # notification above, so bump the
                                    # target's hotness here or the exit
                                    # path can never promote.  At the
                                    # threshold this starts a recording
                                    # that may finish as a linear side
                                    # trace back into compiled code.
                                    self._note_hot_entry(
                                        frame, from_exit=True
                                    )
                        except ExitProgram as exit_request:
                            self.exit_code = exit_request.code
                            frames.clear()
                            break
        if not frames:
            self.finished = True
            self.kernel.exit_process(self.process, self.exit_code)
            return "done"
        return "running"
