"""The machine: interpreter, cost model, and execution helpers.

* :mod:`repro.machine.costs` — the calibrated cycle cost model
* :mod:`repro.machine.interp` — the reference IR interpreter (both modes)
* :mod:`repro.machine.fastexec` — the pre-compiled fast execution engine
* :mod:`repro.machine.executor` — engine registry + RunResult
* :mod:`repro.machine.session` — the session API: RunConfig + CaratSession

The executor/interpreter names are loaded lazily (PEP 562) because the
kernel package imports :mod:`repro.machine.costs` while the executor
imports the kernel — eager re-export would be a cycle.
"""

from repro.machine.costs import DEFAULT_COSTS, CostModel

__all__ = [
    "DEFAULT_COSTS",
    "CostModel",
    "CaratSession",
    "RunConfig",
    "RunResult",
    "run_carat",
    "run_carat_baseline",
    "run_traditional",
    "ENGINES",
    "ExitProgram",
    "FastInterpreter",
    "Interpreter",
    "InterpStats",
    "ThreadGroup",
    "ThreadSpec",
]

_LAZY = {
    "CaratSession": "repro.machine.session",
    "RunConfig": "repro.machine.session",
    "RunResult": "repro.machine.executor",
    "run_carat": "repro.machine.executor",
    "run_carat_baseline": "repro.machine.executor",
    "run_traditional": "repro.machine.executor",
    "ENGINES": "repro.machine.executor",
    "ExitProgram": "repro.machine.interp",
    "FastInterpreter": "repro.machine.fastexec",
    "Interpreter": "repro.machine.interp",
    "InterpStats": "repro.machine.interp",
    "ThreadGroup": "repro.machine.threads",
    "ThreadSpec": "repro.machine.threads",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
