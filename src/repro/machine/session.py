"""The session API: one frozen config, one facade, one run path.

Four PRs of growth left ``executor.py`` with three 10+-kwarg entry
points and the CLI re-implementing kernel/fault wiring by hand.  This
module is the redesign:

* :class:`RunConfig` — a frozen dataclass naming every knob a run has
  (model, guard mechanism, engine, capsule sizes, sanitizing, fault
  injection, telemetry).  ``from_args``/``to_dict``/``from_dict`` give
  the CLI and the benchmark harness one lossless round-trip.
* :class:`CaratSession` — the facade that owns the whole lifecycle:
  compile (tracing pass deltas), build/wire the kernel (retry policy,
  fault injector, degradation), load, attach sanitizer/profiler/tracer,
  run, close the books, export traces.

``run_carat`` / ``run_carat_baseline`` / ``run_traditional`` in
:mod:`repro.machine.executor` survive as thin shims over this class
(signatures preserved; explicit use of the sprawling kwargs raises a
``DeprecationWarning`` pointing here).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.carat.pipeline import (
    CaratBinary,
    CompileOptions,
    compile_baseline,
    compile_carat,
)
from repro.kernel.kernel import DEFAULT_HEAP, DEFAULT_STACK, Kernel
from repro.machine.executor import (
    ENGINES,
    RunResult,
    _interpreter_class,
    _make_sanitizer,
)
from repro.telemetry import CycleProfiler, Tracer

MODES = ("carat", "baseline", "traditional")
GUARD_MECHANISMS = ("mpx", "binary_search", "if_tree")
TRACE_DETAILS = ("normal", "fine")


@dataclass(frozen=True)
class RunConfig:
    """Every knob of one run, in one frozen, serializable place.

    Field-by-field this is the union of the old ``run_*`` kwargs, the
    CLI flags, and the new telemetry switches; ``from_args`` maps an
    argparse namespace onto it 1:1 and ``to_dict``/``from_dict`` round-
    trip it losslessly (asserted by ``tests/test_session.py``).
    """

    mode: str = "carat"
    guard_mechanism: str = "mpx"
    engine: str = "reference"
    entry: str = "main"
    max_steps: int = 50_000_000
    heap_size: int = DEFAULT_HEAP
    stack_size: int = DEFAULT_STACK
    name: str = "program"
    #: Round-robin time-slice, in instructions, for anything that
    #: schedules multiple interpreter contexts — intra-process
    #: :class:`~repro.machine.threads.ThreadGroup` rounds and the
    #: multi-tenant :class:`~repro.multiproc.Scheduler` both consume it.
    quantum: int = 400
    sanitize: bool = False
    #: Fault-injection spec for the move protocol (``run --inject-faults``
    #: syntax); ``None`` disables injection.
    inject_faults: Optional[str] = None
    fault_seed: int = 1234
    #: Attempts per move before degradation; ``None`` = kernel default.
    max_retries: Optional[int] = None
    #: Telemetry (all opt-in; a disabled run is cycle- and code-path-
    #: identical to the pre-telemetry behavior).
    trace: bool = False
    trace_detail: str = "normal"
    profile: bool = False
    #: Path prefix for trace export (written as PREFIX.jsonl and
    #: PREFIX.chrome.json); implies ``trace``.
    trace_out: Optional[str] = None
    #: Asynchronous move service (``--async-moves``): policy moves
    #: enqueue into a :class:`~repro.resilience.movequeue.MoveQueue`
    #: and run incrementally instead of stopping the world per move.
    async_moves: bool = False
    #: Queued same-tenant moves amortizing one flip stop (``--move-batch``).
    move_batch: int = 4
    #: Cycle cap per pre-copy chunk (``--chunk-budget``); 0 = unchunked.
    chunk_budget: int = 0
    #: Trace-tier tuning (``--engine trace`` only; other engines ignore
    #: them): back-edge executions before a block anchor is recorded,
    #: and the superblock length cap in blocks.
    trace_threshold: int = 16
    trace_max_blocks: int = 48
    #: Soak harness (the ``soak`` subcommand; :mod:`repro.soak`):
    #: simulated requests summed across all tenants (``--requests``),
    #: the epoch horizon the watchdog enforces (``--horizon``), the
    #: tenant count (``--tenants``), scheduler rounds folded into one
    #: soak epoch, and warmup epochs the steady-state monitor skips.
    soak_requests: int = 100_000
    soak_horizon: int = 400
    soak_tenants: int = 1
    soak_rounds_per_epoch: int = 8
    soak_warmup: int = 5
    #: Chaos injection: expected protocol faults armed per epoch
    #: (``--chaos-rate``; 0 disables) drawn from ``--seed``.
    chaos_rate: float = 0.0
    chaos_seed: int = 77
    #: SLO gate: p99 cycles-per-request cap (``--slo-p99``; 0 disables).
    slo_p99: int = 0
    #: Epochs between full sanitizer checkpoints during a soak
    #: (``--sanitize-every``; 0 disables the periodic checks).
    sanitize_every: int = 8
    #: Epochs a quarantined range may stay pinned before the
    #: degradation-must-drain verdict fires (``--drain-budget``).
    drain_budget: int = 12
    #: CryptSan-style guard-time memory safety (``--safety``): every
    #: allowed access is additionally checked against allocation-table
    #: liveness; violations raise :class:`~repro.errors.SafetyFault`
    #: with HMAC provenance tags.  CARAT mode only.
    safety: bool = False
    #: Guard-free translation clients (``--agents``): this many
    #: SPARTA-style :class:`~repro.agents.DmaAgent` instances are
    #: registered with an :class:`~repro.agents.AgentMediator` and
    #: stream the process's heap via pinned leases.  CARAT mode only.
    agents: int = 0
    #: Bytes each DMA agent streams per kernel clock step
    #: (``--agent-burst``).
    agent_burst: int = 64

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r} (choose from {MODES})")
        if self.guard_mechanism not in GUARD_MECHANISMS:
            raise ValueError(
                f"unknown guard mechanism {self.guard_mechanism!r} "
                f"(choose from {GUARD_MECHANISMS})"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {sorted(ENGINES)})"
            )
        if self.trace_detail not in TRACE_DETAILS:
            raise ValueError(
                f"unknown trace detail {self.trace_detail!r} "
                f"(choose from {TRACE_DETAILS})"
            )
        if not isinstance(self.quantum, int) or self.quantum < 1:
            raise ValueError(
                f"quantum must be a positive instruction count, "
                f"not {self.quantum!r}"
            )
        if not isinstance(self.move_batch, int) or self.move_batch < 1:
            raise ValueError(
                f"move_batch must be a positive move count, "
                f"not {self.move_batch!r}"
            )
        if not isinstance(self.chunk_budget, int) or self.chunk_budget < 0:
            raise ValueError(
                f"chunk_budget must be a non-negative cycle count, "
                f"not {self.chunk_budget!r}"
            )
        if not isinstance(self.trace_threshold, int) or self.trace_threshold < 1:
            raise ValueError(
                f"trace_threshold must be a positive execution count, "
                f"not {self.trace_threshold!r}"
            )
        if not isinstance(self.trace_max_blocks, int) or self.trace_max_blocks < 1:
            raise ValueError(
                f"trace_max_blocks must be a positive block count, "
                f"not {self.trace_max_blocks!r}"
            )
        for field_name in (
            "soak_requests", "soak_horizon", "soak_tenants",
            "soak_rounds_per_epoch", "drain_budget",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"{field_name} must be a positive int, not {value!r}"
                )
        for field_name in ("soak_warmup", "slo_p99", "sanitize_every"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"{field_name} must be a non-negative int, not {value!r}"
                )
        if not isinstance(self.chaos_rate, (int, float)) or self.chaos_rate < 0:
            raise ValueError(
                f"chaos_rate must be a non-negative fault rate, "
                f"not {self.chaos_rate!r}"
            )
        if not isinstance(self.agents, int) or self.agents < 0:
            raise ValueError(
                f"agents must be a non-negative client count, "
                f"not {self.agents!r}"
            )
        if not isinstance(self.agent_burst, int) or self.agent_burst < 1:
            raise ValueError(
                f"agent_burst must be a positive byte count, "
                f"not {self.agent_burst!r}"
            )
        if self.safety and self.mode != "carat":
            raise ValueError(
                "safety mode rides on CARAT's guards and allocation "
                f"table; mode {self.mode!r} has neither"
            )
        if self.agents and self.mode != "carat":
            raise ValueError(
                "translation-client agents need the CARAT allocation "
                f"table to lease from; mode {self.mode!r} has none"
            )

    @property
    def faulting(self) -> bool:
        return self.inject_faults is not None or self.max_retries is not None

    @property
    def tracing(self) -> bool:
        return self.trace or self.trace_out is not None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RunConfig fields: {unknown}")
        return cls(**data)

    def replace(self, **changes) -> "RunConfig":
        return dataclasses.replace(self, **changes)

    #: argparse dest -> config field, where the names differ.
    _ARG_ALIASES = {
        "guard": "guard_mechanism",
        # The soak subcommand's short flag names.
        "requests": "soak_requests",
        "horizon": "soak_horizon",
        "tenants": "soak_tenants",
        "rounds_per_epoch": "soak_rounds_per_epoch",
        "warmup": "soak_warmup",
        "seed": "chaos_seed",
    }

    @classmethod
    def from_args(cls, args, **overrides) -> "RunConfig":
        """Build a config from an argparse namespace.  Every namespace
        attribute that names a config field (directly or via an alias
        like ``--guard``) is taken; everything else is ignored, so each
        subcommand can expose just the flags it supports.  ``overrides``
        win over the namespace."""
        values: dict = {}
        fields = {f.name for f in dataclasses.fields(cls)}
        for attr, field_name in cls._ARG_ALIASES.items():
            if hasattr(args, attr):
                values[field_name] = getattr(args, attr)
        for field_name in fields:
            if hasattr(args, field_name):
                values[field_name] = getattr(args, field_name)
        values.update(overrides)
        return cls(**values)


#: Counters sampled into the trace at every interpreter safepoint.
def _counter_sample(stats) -> dict:
    return {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "guard_cycles": stats.guard_cycles,
        "tracking_cycles": stats.tracking_cycles,
    }


class CaratSession:
    """One configured execution environment; ``run()`` executes programs.

    The session owns kernel construction and the wiring the CLI used to
    do inline — retry policy, fault injector, degradation manager,
    sanitizer, tracer, profiler — and preserves the exact attach order
    of the old ``run_*`` helpers (binary → kernel → sanitizer →
    load → interpreter → sanitizer → telemetry → setup → run → finish).

    Pass ``kernel=`` to bring a pre-built kernel (the policy subcommand
    sizes its own tiered machine); the session still layers the
    config-driven fault wiring on top without clobbering anything
    already attached.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        *,
        kernel: Optional[Kernel] = None,
        sanitizer=None,
        setup: Optional[Callable] = None,
    ) -> None:
        self.config = config or RunConfig()
        self._kernel = kernel
        self._sanitizer = sanitizer
        self._setup = setup
        #: Live after ``run()``: the tracer/profiler of the last run.
        self.tracer: Optional[Tracer] = None
        self.profiler: Optional[CycleProfiler] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _compile(
        self,
        program: Union[str, CaratBinary],
        options: Optional[CompileOptions],
        tracer: Optional[Tracer],
    ) -> CaratBinary:
        if isinstance(program, CaratBinary):
            return program
        if self.config.mode == "carat":
            return compile_carat(
                program, options, module_name=self.config.name, tracer=tracer
            )
        return compile_baseline(
            program, module_name=self.config.name, tracer=tracer
        )

    def _build_kernel(self) -> Kernel:
        """The kernel plus the config's resilience wiring (mirrors what
        ``repro run --inject-faults`` used to assemble by hand)."""
        kernel = self._kernel if self._kernel is not None else Kernel()
        config = self.config
        if config.max_retries is not None:
            from repro.resilience import RetryPolicy

            kernel.retry_policy = RetryPolicy(max_attempts=config.max_retries)
        if config.inject_faults:
            import random

            from repro.sanitizer import ProtocolFaultInjector, parse_fault_points

            rng = random.Random(config.fault_seed)
            kernel.attach_fault_injector(
                ProtocolFaultInjector(
                    parse_fault_points(config.inject_faults, rng), rng
                )
            )
        if config.faulting and kernel.degradation is None:
            from repro.resilience import DegradationManager

            kernel.attach_degradation(DegradationManager())
        if config.async_moves and kernel.move_queue is None:
            from repro.resilience import MoveQueue

            kernel.attach_move_queue(
                MoveQueue(
                    kernel,
                    batch_size=config.move_batch,
                    chunk_budget=config.chunk_budget,
                )
            )
        return kernel

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(
        self,
        program: Union[str, CaratBinary],
        *,
        options: Optional[CompileOptions] = None,
        setup: Optional[Callable] = None,
    ) -> RunResult:
        config = self.config
        tracer = Tracer(detail=config.trace_detail) if config.tracing else None
        profiler = CycleProfiler() if config.profile else None
        self.tracer = tracer
        self.profiler = profiler

        binary = self._compile(program, options, tracer)
        kernel = self._build_kernel()
        if tracer is not None:
            kernel.attach_tracer(tracer)
        sanitizer = _make_sanitizer(config.sanitize, self._sanitizer, kernel)

        if config.mode == "traditional":
            process = kernel.load_traditional(
                binary,
                heap_size=config.heap_size,
                stack_size=config.stack_size,
            )
        else:
            process = kernel.load_carat(
                binary,
                heap_size=config.heap_size,
                stack_size=config.stack_size,
                guard_mechanism=config.guard_mechanism,
            )
        if config.safety and process.runtime is not None:
            process.runtime.enable_safety()
        if config.agents:
            from repro.agents import AgentMediator, DmaAgent

            mediator = kernel.agents
            if mediator is None:
                mediator = AgentMediator(kernel)
                kernel.attach_agents(mediator)
            for index in range(config.agents):
                agent = DmaAgent(
                    name=f"dma{process.pid}.{index}",
                    burst=config.agent_burst,
                )
                agent.target(process)
                mediator.register(agent)
        interpreter = _interpreter_class(config.engine)(process, kernel)
        if config.agents:
            self._wire_agents(kernel, interpreter)
        if hasattr(interpreter, "set_trace_tuning"):
            interpreter.set_trace_tuning(
                threshold=config.trace_threshold,
                max_blocks=config.trace_max_blocks,
            )
        if sanitizer is not None:
            sanitizer.attach_interpreter(interpreter)
        if tracer is not None:
            self._wire_tracer(tracer, interpreter, process)
        if profiler is not None:
            profiler.attach(interpreter)

        user_setup = setup if setup is not None else self._setup
        if user_setup is not None:
            user_setup(interpreter)

        if tracer is not None:
            tracer.begin(
                "session.run",
                "session",
                {"mode": config.mode, "engine": config.engine,
                 "name": binary.name},
            )
        try:
            exit_code = interpreter.run(config.entry, max_steps=config.max_steps)
        finally:
            if tracer is not None:
                tracer.end(
                    "session.run",
                    "session",
                    {"instructions": interpreter.stats.instructions},
                )
            if profiler is not None:
                profiler.finish(interpreter.stats)
        if kernel.move_queue is not None:
            kernel.move_queue.drain_all()
        if sanitizer is not None:
            sanitizer.finish(kernel)
        if tracer is not None and config.trace_out is not None:
            tracer.write_jsonl(f"{config.trace_out}.jsonl")
            tracer.write_chrome_trace(f"{config.trace_out}.chrome.json")
        return RunResult(
            exit_code, interpreter.output, interpreter.stats, process, kernel,
            interpreter, binary, sanitizer=sanitizer, tracer=tracer,
            profile=profiler, config=config,
        )

    def _wire_agents(self, kernel: Kernel, interpreter) -> None:
        """Drive the agent mediator from the interpreter's safepoint tick.
        The kernel clock only advances when a policy engine is attached;
        a plain run would otherwise never step the translation clients,
        so chain a hook that steps them every ``tick_interval``
        instructions (under whatever a later ``setup`` installs)."""
        mediator = kernel.agents
        if mediator is None:
            return
        # Tiny programs finish inside one default tick; give the agents
        # a finer grain so they observably stream during short runs.
        interpreter.set_tick_interval(min(interpreter.tick_interval, 2_000))
        previous = interpreter.tick_hook

        def step_agents(interp) -> None:
            if previous is not None:
                previous(interp)
            mediator.step()

        interpreter.tick_hook = step_agents

    def _wire_tracer(self, tracer: Tracer, interpreter, process) -> None:
        """Switch the tracer onto the machine clock, point the runtime at
        it, and chain a safepoint counter sampler *under* any tick hook a
        later ``setup`` (e.g. the policy engine) installs on top."""
        tracer.set_clock(lambda: interpreter.stats.cycles)
        runtime = process.runtime
        if runtime is not None:
            runtime.tracer = tracer
        previous = interpreter.tick_hook

        def sample_counters(interp) -> None:
            if previous is not None:
                previous(interp)
            tracer.counter("interp", _counter_sample(interp.stats))

        interpreter.tick_hook = sample_counters
