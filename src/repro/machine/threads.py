"""Multi-threaded execution: several interpreter contexts, one process.

The paper's change-request protocol (Figure 8) is inherently
multi-threaded: the kernel signals *every* thread, each dumps its
register state, they barrier, one coordinates the patch, and all resume.
:class:`ThreadGroup` provides that setting — N cooperative threads
(round-robin, fixed quantum) sharing one CARAT process's memory, heap,
and runtime, each on its own stack:

* thread 0 runs on the process stack;
* additional threads get stacks carved from the heap, registered with
  the Allocation Table as ``stack`` allocations (Section 2.2: "added
  stacks are allocated in heap memory"), so page moves treat them like
  any other data.

``stop_the_world`` gathers one register snapshot per thread;
``resume_after`` writes the (possibly patched) snapshots back.  The
group only yields control at the interpreters' safepoints, so kernel
activity between quanta is always patch-safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import InterpError
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.machine.interp import Interpreter
from repro.runtime.patching import RegisterSnapshot

DEFAULT_THREAD_STACK = 64 * 1024
#: Fallback round-robin quantum when no :class:`RunConfig` supplies one
#: (``RunConfig.quantum`` is the configured path; see ``from_config``).
DEFAULT_QUANTUM = 400


@dataclass
class ThreadSpec:
    """One thread's entry point: a function name plus its arguments."""

    entry: str
    args: Tuple = ()


class ThreadGroup:
    """Cooperative threads over one process; see module docstring."""

    def __init__(
        self,
        process: Process,
        kernel: Kernel,
        specs: Sequence[ThreadSpec],
        quantum: Optional[int] = None,
        thread_stack_size: int = DEFAULT_THREAD_STACK,
    ) -> None:
        if not specs:
            raise ValueError("a thread group needs at least one thread")
        if quantum is None:
            quantum = DEFAULT_QUANTUM
        if quantum < 1:
            raise ValueError(f"quantum must be positive, not {quantum!r}")
        self.process = process
        self.kernel = kernel
        self.quantum = quantum
        self.threads: List[Interpreter] = []
        for i, spec in enumerate(specs):
            if i == 0:
                interp = Interpreter(process, kernel, thread_id=0)
            else:
                if process.heap is None:
                    raise InterpError("extra threads need a process heap")
                base = process.heap.malloc(thread_stack_size)
                top = base + thread_stack_size
                if process.runtime is not None:
                    process.runtime.on_alloc(base, thread_stack_size, "stack")
                interp = Interpreter(
                    process, kernel, stack_range=(base, top), thread_id=i
                )
            interp.start(spec.entry, spec.args)
            self.threads.append(interp)
        self._snapshots: Optional[List[List[RegisterSnapshot]]] = None

    @classmethod
    def from_config(
        cls,
        process: Process,
        kernel: Kernel,
        specs: Sequence[ThreadSpec],
        config,
        thread_stack_size: int = DEFAULT_THREAD_STACK,
    ) -> "ThreadGroup":
        """Build a group whose quantum comes from a
        :class:`~repro.machine.session.RunConfig` (already validated
        there), instead of the module fallback."""
        return cls(
            process,
            kernel,
            specs,
            quantum=config.quantum,
            thread_stack_size=thread_stack_size,
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    @property
    def alive(self) -> List[Interpreter]:
        return [t for t in self.threads if not t.finished]

    @property
    def all_done(self) -> bool:
        return not self.alive

    def run_round(self) -> bool:
        """One scheduling round: every live thread runs one quantum.
        Returns True while any thread remains.  Every thread is at a
        safepoint between quanta, so an attached move queue advances one
        bounded chunk here."""
        for thread in self.alive:
            thread.run_steps(self.quantum)
        queue = getattr(self.kernel, "move_queue", None)
        if queue is not None:
            queue.step()
        return not self.all_done

    def run_to_completion(self, max_rounds: int = 1_000_000) -> None:
        for _ in range(max_rounds):
            if not self.run_round():
                queue = getattr(self.kernel, "move_queue", None)
                if queue is not None:
                    queue.drain_all()
                return
        raise InterpError("thread group exceeded its round budget")

    # ------------------------------------------------------------------
    # World stop (Figure 8 steps 2-3 / 12)
    # ------------------------------------------------------------------

    def stop_the_world(self) -> List[RegisterSnapshot]:
        """Every thread dumps its registers; returns the combined snapshot
        list to hand to the kernel's change request."""
        if self.process.runtime is not None:
            self.process.runtime.world_stop(thread_count=len(self.alive) or 1)
        self._snapshots = [t.register_snapshots() for t in self.threads]
        combined: List[RegisterSnapshot] = []
        for snaps in self._snapshots:
            combined.extend(snaps)
        return combined

    def resume_after(self) -> None:
        """Write patched snapshots back and resume every thread."""
        if self._snapshots is None:
            raise InterpError("resume_after without a preceding stop_the_world")
        for thread, snaps in zip(self.threads, self._snapshots):
            thread.apply_snapshots(snaps)
        self._snapshots = None
        if self.process.runtime is not None:
            self.process.runtime.resume()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def output(self) -> List[str]:
        """All threads' output, thread 0 first (interleaving within a
        thread is preserved; across threads it is grouped)."""
        lines: List[str] = []
        for thread in self.threads:
            lines.extend(thread.output)
        return lines

    def total_instructions(self) -> int:
        return sum(t.stats.instructions for t in self.threads)

    def total_cycles(self) -> int:
        return sum(t.stats.cycles for t in self.threads)
