"""Execution-engine registry and the result type every run produces.

This module used to be the front door (``run_carat`` and friends, each
with 10+ kwargs); since the session redesign the one run path is
:class:`repro.machine.session.CaratSession` driven by a
:class:`~repro.machine.session.RunConfig`.  What remains here is the
machinery the session itself uses:

* :data:`ENGINES` / :func:`_interpreter_class` — the selectable
  execution engines;
* :class:`RunResult` — everything one execution produced;
* :func:`_make_sanitizer` / :func:`_as_binary` — attach helpers.

The legacy ``run_carat`` / ``run_carat_baseline`` / ``run_traditional``
names survive only as tombstones: calling them raises with a pointer at
the session API (tests wanting the compact legacy shape use
``tests.support``; benchmarks use ``benchmarks.harness``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.carat.pipeline import CaratBinary, CompileOptions, compile_carat
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.machine.fastexec import FastInterpreter
from repro.machine.interp import Interpreter, InterpStats
from repro.machine.tracejit import TraceInterpreter
from repro.sanitizer import Sanitizer

#: Selectable execution engines: the readable reference interpreter, the
#: pre-compiled fast engine, and the trace tier that compiles hot
#: superblocks on top of it (all three identical in observable behavior;
#: see :mod:`repro.machine.fastexec` / :mod:`repro.machine.tracejit`).
ENGINES = {
    "reference": Interpreter,
    "fast": FastInterpreter,
    "trace": TraceInterpreter,
}


def _interpreter_class(engine: str) -> type:
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None


@dataclass
class RunResult:
    """Everything one execution produced: output, stats, live objects."""

    exit_code: int
    output: List[str]
    stats: InterpStats
    process: Process
    kernel: Kernel
    interpreter: Interpreter
    binary: CaratBinary
    #: The sanitizer that audited the run (``None`` unless requested).
    sanitizer: Optional[Sanitizer] = None
    #: Telemetry attached by the session (``None`` unless requested):
    #: the event tracer, the cycle profiler, and the RunConfig used.
    tracer: Optional[object] = None
    profile: Optional[object] = None
    config: Optional[object] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    def dtlb_mpki(self) -> float:
        """L1 DTLB misses per 1000 instructions (traditional runs only)."""
        if self.process.mmu is None:
            return 0.0
        return self.stats.mpki(self.process.mmu.dtlb.stats.misses)

    def tracking_footprint(self) -> int:
        if self.process.runtime is None:
            return 0
        return self.process.runtime.tracking_footprint_bytes()

    def fingerprint(self) -> str:
        """Digest of the run's observable behavior: exit code, printed
        output, and every modeled counter.  Two runs of the same program
        under the same config must produce equal fingerprints regardless
        of which API (shim or session) launched them — the parity tests
        assert exactly that."""
        stats = self.stats
        payload = {
            "exit_code": self.exit_code,
            "output": list(self.output),
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "loads": stats.loads,
            "stores": stats.stores,
            "calls": stats.calls,
            "translation_cycles": stats.translation_cycles,
            "guard_cycles": stats.guard_cycles,
            "tracking_cycles": stats.tracking_cycles,
            "page_fault_cycles": stats.page_fault_cycles,
            "tier_cycles": stats.tier_cycles,
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def _as_binary(
    program: Union[str, CaratBinary],
    options: Optional[CompileOptions],
    name: str,
) -> CaratBinary:
    if isinstance(program, CaratBinary):
        return program
    return compile_carat(program, options, module_name=name)


def _make_sanitizer(
    sanitize: bool, sanitizer: Optional[Sanitizer], kernel: Kernel
) -> Optional[Sanitizer]:
    if sanitizer is None and not sanitize:
        return None
    active = sanitizer if sanitizer is not None else Sanitizer()
    active.attach_kernel(kernel)
    return active


def _removed(name: str, mode: str):
    raise RuntimeError(
        f"{name}() was removed: build RunConfig(mode={mode!r}, ...) and "
        "call CaratSession(config).run(program) — see repro.machine.session"
    )


def run_carat(*args, **kwargs):
    """Removed — use ``CaratSession(RunConfig(mode='carat', ...))``."""
    _removed("run_carat", "carat")


def run_carat_baseline(*args, **kwargs):
    """Removed — use ``CaratSession(RunConfig(mode='baseline', ...))``."""
    _removed("run_carat_baseline", "baseline")


def run_traditional(*args, **kwargs):
    """Removed — use ``CaratSession(RunConfig(mode='traditional', ...))``."""
    _removed("run_traditional", "traditional")
