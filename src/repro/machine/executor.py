"""High-level execution helpers: compile, load, run, collect stats.

These are the *legacy* entry points examples and experiment harnesses
use; since the session redesign they are thin shims over
:class:`repro.machine.session.CaratSession`:

* :func:`run_carat` — full CARAT treatment on physical addressing;
* :func:`run_carat_baseline` — the *CARAT baseline*: the same program with
  no instrumentation, also on physical addressing (the denominator of
  every overhead figure);
* :func:`run_traditional` — the paging model with TLBs and pagewalks
  (Figure 2's measurement configuration).

The signatures are preserved exactly, but explicitly passing any of the
sprawling tuning kwargs (guard mechanism, engine, sizes, ...) emits a
``DeprecationWarning`` — new code should build a
:class:`~repro.machine.session.RunConfig` and call
``CaratSession(config).run(program)`` instead.

All three accept ``sanitize=True`` to run under the cross-layer
invariant checker (:mod:`repro.sanitizer`): checkpoints fire after every
kernel change request, at interpreter safepoints, and at end of run, and
the first error-severity violation raises
:class:`~repro.sanitizer.hooks.SanitizerError` at the operation that
caused it.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.carat.pipeline import (
    CaratBinary,
    CompileOptions,
    compile_baseline,
    compile_carat,
)
from repro.kernel.kernel import DEFAULT_HEAP, DEFAULT_STACK, Kernel
from repro.kernel.process import Process
from repro.machine.fastexec import FastInterpreter
from repro.machine.interp import Interpreter, InterpStats
from repro.machine.tracejit import TraceInterpreter
from repro.sanitizer import Sanitizer

#: Selectable execution engines: the readable reference interpreter, the
#: pre-compiled fast engine, and the trace tier that compiles hot
#: superblocks on top of it (all three identical in observable behavior;
#: see :mod:`repro.machine.fastexec` / :mod:`repro.machine.tracejit`).
ENGINES = {
    "reference": Interpreter,
    "fast": FastInterpreter,
    "trace": TraceInterpreter,
}

#: Sentinel distinguishing "caller explicitly passed this kwarg" from
#: "caller took the default" — the shims only warn on the former.
_UNSET = object()


def _interpreter_class(engine: str) -> type:
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None


@dataclass
class RunResult:
    """Everything one execution produced: output, stats, live objects."""

    exit_code: int
    output: List[str]
    stats: InterpStats
    process: Process
    kernel: Kernel
    interpreter: Interpreter
    binary: CaratBinary
    #: The sanitizer that audited the run (``None`` unless requested).
    sanitizer: Optional[Sanitizer] = None
    #: Telemetry attached by the session (``None`` unless requested):
    #: the event tracer, the cycle profiler, and the RunConfig used.
    tracer: Optional[object] = None
    profile: Optional[object] = None
    config: Optional[object] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    def dtlb_mpki(self) -> float:
        """L1 DTLB misses per 1000 instructions (traditional runs only)."""
        if self.process.mmu is None:
            return 0.0
        return self.stats.mpki(self.process.mmu.dtlb.stats.misses)

    def tracking_footprint(self) -> int:
        if self.process.runtime is None:
            return 0
        return self.process.runtime.tracking_footprint_bytes()

    def fingerprint(self) -> str:
        """Digest of the run's observable behavior: exit code, printed
        output, and every modeled counter.  Two runs of the same program
        under the same config must produce equal fingerprints regardless
        of which API (shim or session) launched them — the parity tests
        assert exactly that."""
        stats = self.stats
        payload = {
            "exit_code": self.exit_code,
            "output": list(self.output),
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "loads": stats.loads,
            "stores": stats.stores,
            "calls": stats.calls,
            "translation_cycles": stats.translation_cycles,
            "guard_cycles": stats.guard_cycles,
            "tracking_cycles": stats.tracking_cycles,
            "page_fault_cycles": stats.page_fault_cycles,
            "tier_cycles": stats.tier_cycles,
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def _as_binary(
    program: Union[str, CaratBinary],
    options: Optional[CompileOptions],
    name: str,
) -> CaratBinary:
    if isinstance(program, CaratBinary):
        return program
    return compile_carat(program, options, module_name=name)


def _make_sanitizer(
    sanitize: bool, sanitizer: Optional[Sanitizer], kernel: Kernel
) -> Optional[Sanitizer]:
    if sanitizer is None and not sanitize:
        return None
    active = sanitizer if sanitizer is not None else Sanitizer()
    active.attach_kernel(kernel)
    return active


def _legacy_config(mode: str, **maybe_set):
    """Fold explicitly-passed legacy kwargs into a RunConfig, warning
    once per call when any sprawling kwarg was supplied."""
    from repro.machine.session import RunConfig

    explicit = {
        key: value for key, value in maybe_set.items() if value is not _UNSET
    }
    if explicit:
        warnings.warn(
            f"passing {sorted(explicit)} to run_* helpers is deprecated; "
            "build a RunConfig and use CaratSession instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RunConfig(mode=mode, **explicit)


def run_carat(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    guard_mechanism=_UNSET,
    options: Optional[CompileOptions] = None,
    entry=_UNSET,
    max_steps=_UNSET,
    heap_size=_UNSET,
    stack_size=_UNSET,
    name=_UNSET,
    setup: Optional[Callable[[Interpreter], None]] = None,
    sanitize=_UNSET,
    sanitizer: Optional[Sanitizer] = None,
    engine=_UNSET,
) -> RunResult:
    """Compile (if needed), load, and run a program under CARAT.

    ``setup`` (if given) is called with the freshly built interpreter
    before execution starts — the hook the policy engine uses to attach
    its heat probe and tick hook (see :mod:`repro.policy`).

    ``sanitize=True`` audits the run with a fresh
    :class:`~repro.sanitizer.hooks.Sanitizer`; pass ``sanitizer=`` to
    supply a configured one instead (implies auditing).

    Deprecated shim — prefer ``CaratSession(RunConfig(...)).run(...)``.
    """
    from repro.machine.session import CaratSession

    config = _legacy_config(
        "carat",
        guard_mechanism=guard_mechanism,
        entry=entry,
        max_steps=max_steps,
        heap_size=heap_size,
        stack_size=stack_size,
        name=name,
        sanitize=sanitize,
        engine=engine,
    )
    session = CaratSession(
        config, kernel=kernel, sanitizer=sanitizer, setup=setup
    )
    return session.run(program, options=options)


def run_carat_baseline(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry=_UNSET,
    max_steps=_UNSET,
    heap_size=_UNSET,
    stack_size=_UNSET,
    name=_UNSET,
    sanitize=_UNSET,
    sanitizer: Optional[Sanitizer] = None,
    engine=_UNSET,
) -> RunResult:
    """The uninstrumented program on physical addressing.

    Deprecated shim — prefer ``CaratSession`` with ``mode="baseline"``.
    """
    from repro.machine.session import CaratSession

    config = _legacy_config(
        "baseline",
        entry=entry,
        max_steps=max_steps,
        heap_size=heap_size,
        stack_size=stack_size,
        name=name,
        sanitize=sanitize,
        engine=engine,
    )
    session = CaratSession(config, kernel=kernel, sanitizer=sanitizer)
    return session.run(program)


def run_traditional(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry=_UNSET,
    max_steps=_UNSET,
    heap_size=_UNSET,
    stack_size=_UNSET,
    name=_UNSET,
    sanitize=_UNSET,
    sanitizer: Optional[Sanitizer] = None,
    engine=_UNSET,
) -> RunResult:
    """The paging model: uninstrumented binary, MMU on every data access.

    Deprecated shim — prefer ``CaratSession`` with ``mode="traditional"``.
    """
    from repro.machine.session import CaratSession

    config = _legacy_config(
        "traditional",
        entry=entry,
        max_steps=max_steps,
        heap_size=heap_size,
        stack_size=stack_size,
        name=name,
        sanitize=sanitize,
        engine=engine,
    )
    session = CaratSession(config, kernel=kernel, sanitizer=sanitizer)
    return session.run(program)
