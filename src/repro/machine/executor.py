"""High-level execution helpers: compile, load, run, collect stats.

These are the entry points examples and experiment harnesses use:

* :func:`run_carat` — full CARAT treatment on physical addressing;
* :func:`run_carat_baseline` — the *CARAT baseline*: the same program with
  no instrumentation, also on physical addressing (the denominator of
  every overhead figure);
* :func:`run_traditional` — the paging model with TLBs and pagewalks
  (Figure 2's measurement configuration).

All three accept ``sanitize=True`` to run under the cross-layer
invariant checker (:mod:`repro.sanitizer`): checkpoints fire after every
kernel change request, at interpreter safepoints, and at end of run, and
the first error-severity violation raises
:class:`~repro.sanitizer.hooks.SanitizerError` at the operation that
caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.carat.pipeline import (
    CaratBinary,
    CompileOptions,
    compile_baseline,
    compile_carat,
)
from repro.kernel.kernel import DEFAULT_HEAP, DEFAULT_STACK, Kernel
from repro.kernel.process import Process
from repro.machine.fastexec import FastInterpreter
from repro.machine.interp import Interpreter, InterpStats
from repro.sanitizer import Sanitizer

#: Selectable execution engines: the readable reference interpreter and
#: the pre-compiled fast engine (identical observable behavior; see
#: :mod:`repro.machine.fastexec`).
ENGINES = {"reference": Interpreter, "fast": FastInterpreter}


def _interpreter_class(engine: str) -> type:
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None


@dataclass
class RunResult:
    """Everything one execution produced: output, stats, live objects."""

    exit_code: int
    output: List[str]
    stats: InterpStats
    process: Process
    kernel: Kernel
    interpreter: Interpreter
    binary: CaratBinary
    #: The sanitizer that audited the run (``None`` unless requested).
    sanitizer: Optional[Sanitizer] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    def dtlb_mpki(self) -> float:
        """L1 DTLB misses per 1000 instructions (traditional runs only)."""
        if self.process.mmu is None:
            return 0.0
        return self.stats.mpki(self.process.mmu.dtlb.stats.misses)

    def tracking_footprint(self) -> int:
        if self.process.runtime is None:
            return 0
        return self.process.runtime.tracking_footprint_bytes()


def _as_binary(
    program: Union[str, CaratBinary],
    options: Optional[CompileOptions],
    name: str,
) -> CaratBinary:
    if isinstance(program, CaratBinary):
        return program
    return compile_carat(program, options, module_name=name)


def _make_sanitizer(
    sanitize: bool, sanitizer: Optional[Sanitizer], kernel: Kernel
) -> Optional[Sanitizer]:
    if sanitizer is None and not sanitize:
        return None
    active = sanitizer if sanitizer is not None else Sanitizer()
    active.attach_kernel(kernel)
    return active


def run_carat(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    guard_mechanism: str = "mpx",
    options: Optional[CompileOptions] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    setup: Optional[Callable[[Interpreter], None]] = None,
    sanitize: bool = False,
    sanitizer: Optional[Sanitizer] = None,
    engine: str = "reference",
) -> RunResult:
    """Compile (if needed), load, and run a program under CARAT.

    ``setup`` (if given) is called with the freshly built interpreter
    before execution starts — the hook the policy engine uses to attach
    its heat probe and tick hook (see :mod:`repro.policy`).

    ``sanitize=True`` audits the run with a fresh
    :class:`~repro.sanitizer.hooks.Sanitizer`; pass ``sanitizer=`` to
    supply a configured one instead (implies auditing).
    """
    binary = _as_binary(program, options, name)
    kernel = kernel or Kernel()
    active = _make_sanitizer(sanitize, sanitizer, kernel)
    process = kernel.load_carat(
        binary,
        heap_size=heap_size,
        stack_size=stack_size,
        guard_mechanism=guard_mechanism,
    )
    interpreter = _interpreter_class(engine)(process, kernel)
    if active is not None:
        active.attach_interpreter(interpreter)
    if setup is not None:
        setup(interpreter)
    exit_code = interpreter.run(entry, max_steps=max_steps)
    if active is not None:
        active.finish(kernel)
    return RunResult(
        exit_code, interpreter.output, interpreter.stats, process, kernel,
        interpreter, binary, sanitizer=active,
    )


def run_carat_baseline(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    sanitize: bool = False,
    engine: str = "reference",
) -> RunResult:
    """The uninstrumented program on physical addressing."""
    binary = (
        program
        if isinstance(program, CaratBinary)
        else compile_baseline(program, module_name=name)
    )
    return run_carat(
        binary,
        kernel=kernel,
        entry=entry,
        max_steps=max_steps,
        heap_size=heap_size,
        stack_size=stack_size,
        name=name,
        sanitize=sanitize,
        engine=engine,
    )


def run_traditional(
    program: Union[str, CaratBinary],
    kernel: Optional[Kernel] = None,
    entry: str = "main",
    max_steps: int = 50_000_000,
    heap_size: int = DEFAULT_HEAP,
    stack_size: int = DEFAULT_STACK,
    name: str = "program",
    sanitize: bool = False,
    sanitizer: Optional[Sanitizer] = None,
    engine: str = "reference",
) -> RunResult:
    """The paging model: uninstrumented binary, MMU on every data access."""
    binary = (
        program
        if isinstance(program, CaratBinary)
        else compile_baseline(program, module_name=name)
    )
    kernel = kernel or Kernel()
    active = _make_sanitizer(sanitize, sanitizer, kernel)
    process = kernel.load_traditional(
        binary, heap_size=heap_size, stack_size=stack_size
    )
    interpreter = _interpreter_class(engine)(process, kernel)
    if active is not None:
        active.attach_interpreter(interpreter)
    exit_code = interpreter.run(entry, max_steps=max_steps)
    if active is not None:
        active.finish(kernel)
    return RunResult(
        exit_code, interpreter.output, interpreter.stats, process, kernel,
        interpreter, binary, sanitizer=active,
    )
