"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``  — compile Mini-C to a signed CARAT binary; print the
  IR and the guard/tracking statistics (``--emit-ir``, ``--no-opt``...);
* ``run FILE``      — compile and execute under a chosen model
  (``--mode carat|baseline|traditional``), reporting output and cycles;
* ``bench [NAME]``  — run one suite workload under all three models and
  print the comparison row; with no name, list the available targets;
* ``policy NAME``   — run one workload under CARAT with the memory-policy
  engine attached (heat-tracked compaction + tiered placement) and print
  the :class:`~repro.policy.engine.PolicyStats` summary;
* ``smp NAME``      — time-slice ``--tenants`` copies of one workload
  over a single kernel (per-tenant region sets, CoW-deduplicated images,
  optional fairness arbitration) and report aggregate throughput plus
  per-tenant p99 pause; ``--json`` writes the ``carat.multitenant.v1``
  document (the CI smp-smoke job drives this);
* ``sanitize [NAME]`` — audit workload runs under the cross-layer
  invariant checker (:mod:`repro.sanitizer`) and report violations;
* ``trace NAME``    — record a structured event trace of one run, export
  it as JSONL + Chrome ``trace_event`` JSON, and validate it against the
  schema (the CI trace-smoke job drives this);
* ``profile NAME``  — run with the cycle-attributed profiler and print
  the bucket/function/allocation-site breakdown (buckets sum exactly to
  ``InterpStats.cycles``);
* ``workloads``     — list the benchmark suite.

Every subcommand is a thin veneer over
:class:`~repro.machine.session.CaratSession`: flags map 1:1 onto
:class:`~repro.machine.session.RunConfig` fields via
``RunConfig.from_args``, so the CLI, the benchmark harness, and library
callers all drive the same run path.  ``run`` additionally accepts
``--trace``/``--profile``/``--trace-out`` to attach telemetry to any
execution.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.carat.pipeline import CompileOptions, compile_carat
from repro.ir.printer import print_module


# ---------------------------------------------------------------------------
# Shared flag groups.  Each factory returns an ``add_help=False`` parent
# parser; subcommands compose them via ``parents=[...]`` so every flag in
# a group is defined exactly once and stays identical everywhere.
# ---------------------------------------------------------------------------


def _engine_flags(help_suffix: str = "") -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine",
        choices=["reference", "fast", "trace"],
        default="reference",
        help="execution engine: readable reference interpreter, the "
        "pre-compiled fast engine, or the trace tier that compiles hot "
        "superblocks on top of it (identical observable behavior)"
        + help_suffix,
    )
    return parent


def _async_move_flags() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--async-moves",
        action="store_true",
        dest="async_moves",
        help="service policy moves through the asynchronous move queue: "
        "pre-copy runs in bounded chunks with the world running and one "
        "batched stop covers the patch-and-flip tail",
    )
    parent.add_argument(
        "--move-batch",
        type=int,
        default=4,
        dest="move_batch",
        metavar="N",
        help="queued same-tenant moves amortizing one flip stop "
        "(default 4; needs --async-moves)",
    )
    parent.add_argument(
        "--chunk-budget",
        type=int,
        default=0,
        dest="chunk_budget",
        metavar="CYCLES",
        help="cycle cap per pre-copy chunk; 0 streams each move's "
        "pre-copy in one step (default 0; needs --async-moves)",
    )
    return parent


def _telemetry_flags() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace",
        action="store_true",
        help="record structured trace events (compiler passes, guard "
        "faults, Figure-8 steps, policy epochs, move outcomes)",
    )
    parent.add_argument(
        "--trace-detail",
        choices=["normal", "fine"],
        default="normal",
        dest="trace_detail",
        help="trace granularity; 'fine' adds one instant per guard check "
        "and tracking callback (small programs only)",
    )
    parent.add_argument(
        "--trace-out",
        metavar="PREFIX",
        dest="trace_out",
        help="write the trace to PREFIX.jsonl and PREFIX.chrome.json "
        "(implies --trace)",
    )
    parent.add_argument(
        "--profile",
        action="store_true",
        help="attach the cycle-attributed profiler and print the bucket "
        "breakdown (buckets sum exactly to the cycle total)",
    )
    return parent


def _sanitize_flags(
    help_text: str = "run under the cross-layer invariant checker",
) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--sanitize", action="store_true", help=help_text)
    return parent


def _fault_flags(context: str = "") -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="kill the move protocol at chosen steps (carat mode): "
        "comma-separated STEP:KIND[:MOVE][:persist] entries, e.g. "
        "'copy-data:crash', 'patch-escapes:torn:0', "
        "'region-install:hang:2:persist', or 'random:N' drawn from "
        "--fault-seed; failed moves roll back, retry with backoff, and "
        "degrade when exhausted" + context,
    )
    parent.add_argument(
        "--fault-seed",
        type=int,
        default=1234,
        help="seed for 'random:N' fault schedules (default: 1234)",
    )
    parent.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per move before it degrades (default: 3)",
    )
    return parent


def _client_flags() -> argparse.ArgumentParser:
    """Translation clients and the memory-safety mode (carat mode only)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--safety",
        action="store_true",
        help="guard-time memory safety: every allowed access is also "
        "checked against allocation-table liveness; use-after-free and "
        "out-of-bounds raise a structured SafetyFault with HMAC "
        "provenance tags (carat mode only)",
    )
    parent.add_argument(
        "--agents",
        type=int,
        default=0,
        metavar="N",
        help="register N guard-free DMA agents that stream the heap "
        "through kernel-mediated pinned leases; page moves drain "
        "overlapping leases in the quiesce-agents step (carat mode only)",
    )
    parent.add_argument(
        "--agent-burst",
        type=int,
        default=64,
        dest="agent_burst",
        metavar="BYTES",
        help="bytes each DMA agent streams per kernel clock step "
        "(default 64)",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CARAT (PLDI 2020) reproduction: compile and run "
        "Mini-C programs under compiler/runtime-based address translation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compile", help="compile Mini-C to a CARAT binary")
    comp.add_argument("file", help="Mini-C source file")
    comp.add_argument("--emit-ir", action="store_true", help="print the final IR")
    comp.add_argument("--no-opt", action="store_true", help="skip general optimizations")
    comp.add_argument(
        "--no-carat-opts", action="store_true", help="skip guard optimizations"
    )
    comp.add_argument("--no-guards", action="store_true", help="skip guard injection")
    comp.add_argument("--no-tracking", action="store_true", help="skip tracking")

    run = sub.add_parser(
        "run",
        help="compile and execute a program",
        parents=[
            _engine_flags(),
            _sanitize_flags(),
            _fault_flags(),
            _async_move_flags(),
            _telemetry_flags(),
            _client_flags(),
        ],
    )
    run.add_argument("file", help="Mini-C source file")
    run.add_argument(
        "--mode",
        choices=["carat", "baseline", "traditional"],
        default="carat",
        help="execution model (default: carat)",
    )
    run.add_argument(
        "--guard",
        choices=["mpx", "binary_search", "if_tree"],
        default="mpx",
        help="guard mechanism for carat mode",
    )
    run.add_argument("--max-steps", type=int, default=50_000_000)
    run.add_argument("--stats", action="store_true", help="print cycle accounting")
    run.add_argument(
        "--trace-threshold",
        type=int,
        default=16,
        help="--engine trace: back-edge executions before a hot block "
        "anchor is recorded into a superblock (default: 16)",
    )
    run.add_argument(
        "--trace-max-blocks",
        type=int,
        default=48,
        help="--engine trace: superblock length cap, in branch-entered "
        "blocks (default: 48)",
    )

    bench = sub.add_parser(
        "bench",
        help="run one suite workload in all modes",
        parents=[
            _engine_flags(" for every configuration"),
            _sanitize_flags("run every configuration under the invariant checker"),
        ],
    )
    bench.add_argument(
        "name",
        nargs="?",
        help="workload name (omit to list the available targets)",
    )
    bench.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )

    policy = sub.add_parser(
        "policy",
        help="run a workload under CARAT with the memory-policy engine",
        parents=[
            _engine_flags(" (the policy hooks work under both)"),
            _sanitize_flags(),
            _fault_flags(
                " (policy moves roll back, retry, and degrade — "
                "quarantined ranges pin and the engine cools down)"
            ),
            _async_move_flags(),
        ],
    )
    policy.add_argument("name", help="workload name (see `repro workloads`)")
    policy.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )
    policy.add_argument(
        "--fast-kb",
        type=int,
        default=1024,
        help="fast-tier size in KiB (0 disables tiering; default 1024)",
    )
    policy.add_argument(
        "--memory-kb",
        type=int,
        default=8192,
        help="total physical memory in KiB (default 8192)",
    )
    policy.add_argument(
        "--epoch-cycles",
        type=int,
        default=20_000,
        help="policy epoch length in cycles (default 20000)",
    )
    policy.add_argument(
        "--budget",
        type=int,
        default=100_000,
        help="move-cycle budget per epoch (default 100000)",
    )
    policy.add_argument(
        "--no-compaction", action="store_true", help="disable the compaction daemon"
    )
    policy.add_argument(
        "--no-tiering", action="store_true", help="disable the tiering balancer"
    )
    policy.add_argument(
        "--scatter",
        action="store_true",
        help="pre-fragment physical memory before running (compaction demo)",
    )

    smp = sub.add_parser(
        "smp",
        help="time-slice N tenants of one workload over a single kernel",
        parents=[
            _engine_flags(" for every tenant"),
            _sanitize_flags(
                "run under the cross-layer invariant checker (including "
                "the cross-process frame-ownership and shared-CoW rules)"
            ),
            _async_move_flags(),
            _client_flags(),
        ],
    )
    smp.add_argument(
        "name", help="workload name (see `repro workloads`) or a Mini-C file"
    )
    smp.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )
    smp.add_argument(
        "--tenants",
        type=int,
        default=8,
        help="number of tenants to schedule (default 8)",
    )
    smp.add_argument(
        "--quantum",
        type=int,
        default=400,
        help="round-robin time slice in instructions (default 400; "
        "scaled by each tenant's weight)",
    )
    smp.add_argument(
        "--weights",
        metavar="W1,W2,...",
        help="comma-separated fairness weights, one per tenant (cycled "
        "if shorter; default: all 1)",
    )
    smp.add_argument(
        "--guard",
        choices=["mpx", "binary_search", "if_tree"],
        default="mpx",
        help="guard mechanism for every tenant",
    )
    smp.add_argument(
        "--no-cow",
        dest="cow",
        action="store_false",
        help="disable cross-tenant page sharing (CoW dedup is on by "
        "default: identical images share one physical copy)",
    )
    smp.add_argument(
        "--arbiter",
        action="store_true",
        help="attach the fairness arbiter (weighted per-tenant "
        "compaction/tiering budgets, pressure-driven demotion)",
    )
    smp.add_argument(
        "--heap-kb",
        type=int,
        default=64,
        help="per-tenant heap in KiB (default 64)",
    )
    smp.add_argument(
        "--stack-kb",
        type=int,
        default=16,
        help="per-tenant stack in KiB (default 16)",
    )
    smp.add_argument(
        "--memory-kb",
        type=int,
        default=0,
        help="total physical memory in KiB (0 = size automatically)",
    )
    smp.add_argument(
        "--fast-kb",
        type=int,
        default=0,
        help="fast-tier size in KiB (0 disables tiering)",
    )
    smp.add_argument("--max-steps", type=int, default=50_000_000)
    smp.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the carat.multitenant.v1 result document to FILE",
    )

    soak = sub.add_parser(
        "soak",
        help="long-horizon service soak with continuous chaos injection "
        "and steady-state watchdogs",
        parents=[_engine_flags(" for every tenant")],
    )
    soak.add_argument(
        "--workload",
        choices=["kvservice", "kvburst"],
        default="kvservice",
        help="request-serving workload family (default kvservice)",
    )
    soak.add_argument(
        "--requests",
        type=int,
        default=100_000,
        dest="requests",
        help="total requests to serve across all tenants (default 100000)",
    )
    soak.add_argument(
        "--horizon",
        type=int,
        default=400,
        dest="horizon",
        help="maximum epochs before the watchdog declares the soak "
        "exhausted (default 400)",
    )
    soak.add_argument(
        "--tenants",
        type=int,
        default=1,
        dest="tenants",
        help="number of service tenants (default 1)",
    )
    soak.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        dest="chaos_rate",
        help="expected protocol faults armed per epoch (0 disables chaos)",
    )
    soak.add_argument(
        "--seed",
        type=int,
        default=77,
        dest="seed",
        help="chaos schedule seed (same seed => identical fault sequence "
        "and run fingerprint)",
    )
    soak.add_argument(
        "--slo-p99",
        type=int,
        default=0,
        dest="slo_p99",
        help="p99 cycles-per-request SLO gate (0 disables)",
    )
    soak.add_argument(
        "--rounds-per-epoch",
        type=int,
        default=25,
        dest="rounds_per_epoch",
        help="scheduler rounds per soak epoch (default 25)",
    )
    soak.add_argument(
        "--warmup",
        type=int,
        default=5,
        dest="warmup",
        help="epochs excluded from steady-state judgement (default 5)",
    )
    soak.add_argument(
        "--sanitize-every",
        type=int,
        default=8,
        dest="sanitize_every",
        help="epochs between full invariant-checker checkpoints "
        "(0 = final check only; default 8)",
    )
    soak.add_argument(
        "--drain-budget",
        type=int,
        default=12,
        dest="drain_budget",
        help="epochs a quarantined range may stay quarantined (default 12)",
    )
    soak.add_argument(
        "--quantum",
        type=int,
        default=1000,
        help="round-robin time slice in instructions (default 1000)",
    )
    soak.add_argument(
        "--heap-kb",
        type=int,
        default=64,
        help="per-tenant heap in KiB (default 64)",
    )
    soak.add_argument(
        "--fast-kb",
        type=int,
        default=96,
        help="fast-tier size in KiB (0 disables tiering; default 96, "
        "deliberately tight so tiering churn gives chaos moves to hit)",
    )
    soak.add_argument("--max-steps", type=int, default=500_000_000)
    soak.add_argument(
        "--crash-dump",
        default=None,
        metavar="FILE",
        help="crash-dump bundle path (default soak-crash-<engine>.json)",
    )
    soak.add_argument(
        "--json",
        metavar="FILE",
        dest="json_out",
        help="write the carat.soak.v1 report document to FILE",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="audit workload runs under the cross-layer invariant checker",
    )
    sanitize.add_argument(
        "name",
        nargs="?",
        help="workload name (omit to audit the whole suite)",
    )
    sanitize.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )
    sanitize.add_argument(
        "--mode",
        choices=["carat", "traditional", "both"],
        default="both",
        help="execution model(s) to audit (default: both)",
    )
    sanitize.add_argument(
        "--tick-interval",
        type=int,
        default=10_000,
        help="instructions between safepoint checkpoints (default 10000)",
    )

    trace = sub.add_parser(
        "trace",
        help="record, export, and validate a structured trace of one run",
        parents=[_engine_flags()],
    )
    trace.add_argument(
        "name", help="workload name (see `repro workloads`) or a Mini-C file"
    )
    trace.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )
    trace.add_argument(
        "--mode",
        choices=["carat", "baseline", "traditional"],
        default="carat",
        help="execution model (default: carat)",
    )
    trace.add_argument(
        "--detail",
        choices=["normal", "fine"],
        default="normal",
        dest="trace_detail",
        help="trace granularity ('fine' adds per-guard-check instants)",
    )
    trace.add_argument(
        "--out",
        default="trace",
        metavar="PREFIX",
        help="output prefix: writes PREFIX.jsonl and PREFIX.chrome.json "
        "(default: trace)",
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="also attach the cycle profiler and print its breakdown",
    )

    profile = sub.add_parser(
        "profile",
        help="run with the cycle-attributed profiler and print the breakdown",
        parents=[_engine_flags()],
    )
    profile.add_argument(
        "name", help="workload name (see `repro workloads`) or a Mini-C file"
    )
    profile.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default="tiny"
    )
    profile.add_argument(
        "--mode",
        choices=["carat", "baseline", "traditional"],
        default="carat",
        help="execution model (default: carat)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the full carat.profile.v1 document as JSON",
    )

    sub.add_parser("workloads", help="list the benchmark suite")
    return parser


def _read_source(path: str) -> str:
    file = Path(path)
    if not file.exists():
        raise SystemExit(f"repro: no such file: {path}")
    return file.read_text()


def _resolve_program(args: argparse.Namespace):
    """``NAME`` is a Mini-C file path if one exists, else a suite
    workload resolved at ``--scale``.  Returns (source, display name)."""
    if Path(args.name).exists():
        return _read_source(args.name), Path(args.name).stem
    from repro.workloads import get_workload

    workload = get_workload(args.name, args.scale)
    return workload.source, workload.name


def _cmd_compile(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    options = CompileOptions(
        optimize=not args.no_opt,
        guards=not args.no_guards,
        carat_guard_opts=not args.no_carat_opts,
        tracking=not args.no_tracking,
    )
    binary = compile_carat(source, options, module_name=Path(args.file).stem)
    stats = binary.guard_stats
    print(f"module     : {binary.name}")
    print(f"signed     : {binary.signature.toolchain if binary.signature else 'no'}")
    print(
        f"guards     : {stats.total} total / {stats.remaining} remaining "
        f"(untouched {stats.untouched}, hoisted {stats.hoisted}, "
        f"merged {stats.merged}, eliminated {stats.eliminated})"
    )
    print(f"tracking   : {binary.tracking_stats.total} callbacks")
    if args.emit_ir:
        print()
        print(print_module(binary.module))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import SafetyFault
    from repro.machine.session import CaratSession, RunConfig

    source = _read_source(args.file)
    name = Path(args.file).stem
    try:
        config = RunConfig.from_args(args, name=name)
    except ValueError as error:
        print(f"repro run: {error}", file=sys.stderr)
        return 2
    if config.faulting and config.mode != "carat":
        print("--inject-faults/--max-retries require --mode carat", file=sys.stderr)
        return 2
    try:
        result = CaratSession(config).run(source)
    except SafetyFault as fault:
        violation = fault.violation
        print("-- SAFETY FAULT --", file=sys.stderr)
        print(f"   {violation.describe()}", file=sys.stderr)
        for key, value in sorted(violation.to_dict().items()):
            print(f"   {key:16s}: {value}", file=sys.stderr)
        return 3
    for line in result.output:
        print(line)
    if args.sanitize and result.sanitizer is not None:
        print(f"-- sanitizer    : {result.sanitizer.describe()}", file=sys.stderr)
    if config.agents and result.kernel.agents is not None:
        for client in result.kernel.agents.clients.values():
            print(
                f"-- agent        : {client.name} leases "
                f"{client.leases_taken} taken / {client.leases_drained} "
                f"drained, {client.bytes_streamed} bytes streamed "
                f"(checksum {client.checksum})",
                file=sys.stderr,
            )
    if args.stats:
        print(f"-- exit code    : {result.exit_code}", file=sys.stderr)
        print(f"-- instructions : {result.instructions}", file=sys.stderr)
        print(f"-- cycles       : {result.cycles}", file=sys.stderr)
        if args.engine in ("fast", "trace"):
            stats = result.stats
            print(
                f"-- dispatch     : {stats.compiled_blocks} compiled blocks, "
                f"{stats.dispatch_cache_hits} cache hits, "
                f"{stats.dispatch_cache_misses} cache misses",
                file=sys.stderr,
            )
        if args.engine == "trace":
            stats = result.stats
            print(
                f"-- traces       : {stats.traces_compiled} compiled, "
                f"{stats.trace_exits} side exits, "
                f"{stats.trace_respecializations} respecializations, "
                f"{stats.guard_checks_elided} guard checks elided",
                file=sys.stderr,
            )
        if result.process.runtime is not None:
            rt = result.process.runtime
            print(
                f"-- guards       : {rt.stats.guards_executed} executed, "
                f"{rt.stats.guard_faults} faults",
                file=sys.stderr,
            )
            if args.engine in ("fast", "trace"):
                print(
                    f"-- guard cache  : {rt.stats.region_cache_hits} hits, "
                    f"{rt.stats.region_cache_misses} misses, "
                    f"{rt.stats.region_cache_invalidations} invalidations "
                    f"({rt.stats.region_cache_hit_rate():.1%} hit rate)",
                    file=sys.stderr,
                )
            print(
                f"-- escapes      : {rt.escapes.stats.recorded} recorded, "
                f"{rt.escapes.stats.rewritten} rewritten",
                file=sys.stderr,
            )
            ks = result.kernel.stats
            print(
                f"-- moves        : {ks.moves_attempted} attempted, "
                f"{ks.moves_committed} committed, "
                f"{ks.moves_rolled_back} rolled back, "
                f"{ks.move_retries} retried, "
                f"{ks.moves_degraded} degraded "
                f"({ks.backoff_cycles} backoff cycles)",
                file=sys.stderr,
            )
            degradation = result.kernel.degradation
            if degradation is not None and degradation.failures:
                print(
                    f"-- degradation  : {degradation.describe()}",
                    file=sys.stderr,
                )
            injector = result.kernel.fault_injector
            if injector is not None and injector.fired:
                print(
                    f"-- faults fired : {', '.join(injector.fired)}",
                    file=sys.stderr,
                )
        if result.process.mmu is not None:
            print(
                f"-- dtlb         : {result.dtlb_mpki():.3f} misses/1K insts",
                file=sys.stderr,
            )
    if result.tracer is not None:
        summary = result.tracer.summary()
        print(
            f"-- trace        : {summary['total']} events, "
            f"{result.tracer.dropped_events} dropped"
            + (f" -> {config.trace_out}.jsonl" if config.trace_out else ""),
            file=sys.stderr,
        )
    if result.profile is not None:
        result.profile.assert_reconciles(result.stats)
        print("-- profile --", file=sys.stderr)
        print(result.profile.report(), file=sys.stderr)
    return result.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.machine.session import CaratSession, RunConfig
    from repro.workloads import get_workload

    if args.name is None:
        return _cmd_workloads(args)
    workload = get_workload(args.name, args.scale)

    def run_mode(mode: str):
        config = RunConfig.from_args(args, mode=mode, name=workload.name)
        return CaratSession(config).run(workload.source)

    base = run_mode("baseline")
    carat = run_mode("carat")
    trad = run_mode("traditional")
    assert base.output == carat.output == trad.output
    print(f"workload    : {workload.name} ({workload.suite}, {args.scale})")
    print(f"behavior    : {workload.behavior}")
    print(f"output      : {base.output[-1] if base.output else ''}")
    print(f"{'config':12s} {'cycles':>12s} {'vs baseline':>12s}")
    print(f"{'baseline':12s} {base.cycles:12d} {1.0:12.3f}")
    print(f"{'carat':12s} {carat.cycles:12d} {carat.cycles / base.cycles:12.3f}")
    print(f"{'traditional':12s} {trad.cycles:12d} {trad.cycles / base.cycles:12.3f}")
    if args.sanitize:
        for label, result in (("baseline", base), ("carat", carat), ("traditional", trad)):
            print(f"sanitize    : {label}: {result.sanitizer.describe()}")
    return 0


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.kernel.kernel import Kernel
    from repro.machine.session import CaratSession, RunConfig
    from repro.policy import (
        CompactionDaemon,
        HeatTracker,
        PolicyEngine,
        TieringBalancer,
        assess_fragmentation,
        scatter_capsule,
    )
    from repro.resilience import DegradationManager
    from repro.workloads import get_workload

    workload = get_workload(args.name, args.scale)
    fast = args.fast_kb * 1024
    kernel = Kernel(
        memory_size=args.memory_kb * 1024,
        fast_memory=fast if fast else None,
    )
    # Policy runs always degrade gracefully on exhausted moves; the
    # session layers the config-driven retry/injector wiring on top.
    kernel.attach_degradation(DegradationManager())
    engine: Optional[PolicyEngine] = None
    frag_before = None

    def setup(interpreter) -> None:
        nonlocal engine, frag_before
        process = interpreter.process
        if args.scatter:
            scatter_capsule(kernel, process, interpreter=interpreter)
        frag_before = assess_fragmentation(kernel.frames)
        heat = HeatTracker(sample_period=1, decay=0.5)
        compaction = (
            None
            if args.no_compaction
            else CompactionDaemon(kernel, process)
        )
        tiering = (
            TieringBalancer(kernel, process, heat, max_allocation_pages=40)
            if fast and not args.no_tiering
            else None
        )
        engine = PolicyEngine(
            kernel,
            process,
            epoch_cycles=args.epoch_cycles,
            budget_cycles=args.budget,
            heat=heat,
            compaction=compaction,
            tiering=tiering,
        )
        engine.attach(interpreter)

    config = RunConfig.from_args(
        args,
        mode="carat",
        name=workload.name,
        # Modest capsule so it fits the slow tier of the default 8 MiB
        # machine (suite workloads at these scales need far less).
        heap_size=512 * 1024,
        stack_size=128 * 1024,
    )
    session = CaratSession(config, kernel=kernel, setup=setup)
    result = session.run(workload.source)
    assert engine is not None and frag_before is not None
    frag_after = assess_fragmentation(kernel.frames)
    stats = engine.stats
    print(f"workload    : {workload.name} ({workload.suite}, {args.scale})")
    print(f"output      : {result.output[-1] if result.output else ''}")
    print(f"policy      : {stats.describe()}")
    print(f"frag before : {frag_before.describe()}")
    print(f"frag after  : {frag_after.describe()}")
    if kernel.frames.tiered:
        print(
            f"tiering     : {result.stats.fast_tier_accesses} fast / "
            f"{result.stats.slow_tier_accesses} slow accesses "
            f"({result.stats.hot_tier_share():.1%} overall hot-tier share)"
        )
    ks = kernel.stats
    print(
        f"moves       : {ks.moves_attempted} attempted, "
        f"{ks.moves_committed} committed, {ks.moves_rolled_back} rolled "
        f"back, {ks.move_retries} retried, {ks.moves_degraded} degraded"
    )
    if kernel.degradation is not None and kernel.degradation.failures:
        print(f"degradation : {kernel.degradation.describe()}")
    if kernel.fault_injector is not None and kernel.fault_injector.fired:
        print(f"faults fired: {', '.join(kernel.fault_injector.fired)}")
    if args.sanitize and result.sanitizer is not None:
        print(f"sanitizer   : {result.sanitizer.describe()}")
    return result.exit_code


def _cmd_smp(args: argparse.Namespace) -> int:
    from repro.machine.session import RunConfig
    from repro.multiproc import FairnessArbiter, Scheduler, TenantSpec

    if args.tenants < 1:
        raise SystemExit("repro smp: --tenants must be at least 1")
    source, name = _resolve_program(args)
    weights = [1] * args.tenants
    if args.weights:
        try:
            parsed = [int(w) for w in args.weights.split(",")]
        except ValueError:
            raise SystemExit(f"repro smp: bad --weights {args.weights!r}")
        weights = [parsed[i % len(parsed)] for i in range(args.tenants)]
    specs = [
        TenantSpec(source, name=f"{name}{i}", weight=weights[i])
        for i in range(args.tenants)
    ]
    config = RunConfig.from_args(
        args,
        mode="carat",
        name=name,
        heap_size=args.heap_kb * 1024,
        stack_size=args.stack_kb * 1024,
    )
    scheduler = Scheduler(
        config,
        specs,
        share=args.cow,
        arbiter=FairnessArbiter() if args.arbiter else None,
        memory_size=args.memory_kb * 1024 or None,
        fast_memory=args.fast_kb * 1024 or None,
    )
    result = scheduler.run()

    print(
        f"schedule    : {args.tenants} x {name} ({config.engine}, "
        f"quantum {config.quantum}, cow {'on' if args.cow else 'off'})"
    )
    print(
        f"machine     : {result.machine_cycles} cycles over "
        f"{result.rounds} rounds"
    )
    print(
        f"throughput  : {result.total_instructions()} instructions, "
        f"{result.aggregate_throughput():.4f} per machine cycle"
    )
    if result.dedup is not None:
        dedup = result.dedup
        print(
            f"cow dedup   : {dedup['shared_pages']} shared pages, "
            f"{dedup['saved_pages']} saved ({dedup['saved_bytes']} bytes), "
            f"{dedup['cow_breaks']} breaks"
        )
    if result.arbitration is not None:
        arb = result.arbitration
        print(
            f"arbitration : {arb['epochs_run']} epochs, "
            f"{arb['pressure_demotions']} pressure demotions, budgets "
            f"{'respected' if arb['budgets_respected'] else 'OVERRUN'}"
        )
    print(f"{'pid':>4s} {'tenant':14s} {'exit':>4s} {'instr':>9s} "
          f"{'cycles':>10s} {'pauses':>6s} {'p99 pause':>9s}")
    failures = 0
    for pid, tenant in sorted(result.tenants.items()):
        if tenant.exit_code != 0:
            failures += 1
        print(
            f"{pid:4d} {tenant.process.name:14s} {tenant.exit_code:4d} "
            f"{tenant.stats.instructions:9d} {tenant.stats.cycles:10d} "
            f"{len(result.pauses.get(pid, [])):6d} "
            f"{result.p99_pause(pid):9d}"
        )
    if args.json_out:
        document = result.to_dict()
        Path(args.json_out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"json        : {args.json_out}")
    return 1 if failures else 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.machine.session import RunConfig
    from repro.soak import SoakRunner

    if args.tenants < 1:
        raise SystemExit("repro soak: --tenants must be at least 1")
    config = RunConfig.from_args(
        args,
        mode="carat",
        name=args.workload,
        heap_size=args.heap_kb * 1024,
    )
    runner = SoakRunner(
        config,
        workload=args.workload,
        fast_memory=args.fast_kb * 1024 or None,
        crash_dump_path=args.crash_dump,
    )
    report = runner.run()

    print(
        f"soak        : {args.tenants} x {args.workload} ({config.engine}, "
        f"quantum {config.quantum}, chaos rate {config.chaos_rate:g}, "
        f"seed {config.chaos_seed})"
    )
    print(
        f"horizon     : {report.epochs} epochs ({report.rounds} rounds, "
        f"{report.machine_cycles} machine cycles)"
    )
    print(
        f"requests    : {report.requests_completed}/{report.requests_target} "
        f"served, {report.throughput_rpkc():.3f} per kilocycle"
    )
    print(
        f"latency     : p50 {report.latency_p50} / p99 {report.latency_p99} "
        f"cycles per request ({report.latency_samples} samples)"
    )
    efi = report.efi_trajectory
    print(
        f"efi         : first {efi[0]:.4f} last {efi[-1]:.4f} "
        f"max {max(efi):.4f}"
        if efi
        else "efi         : no samples"
    )
    faults = report.faults
    print(
        f"chaos       : {faults['injected']} armed, {faults['fired']} fired, "
        f"{faults['move_retries']} retries, {faults['moves_degraded']} "
        f"degraded, {faults['quarantines_drained']} quarantines drained"
    )
    print(f"sanitizer   : {report.sanitizer}")
    print(f"trace       : {report.dropped_events} dropped events")
    print(f"fingerprint : {report.fingerprint()}")
    if report.verdicts:
        print(f"verdicts    : {len(report.verdicts)} steady-state violation(s)")
        for verdict in report.verdicts:
            print(
                f"  [{verdict['name']}] epoch {verdict['epoch']}: "
                f"{verdict['detail']}"
            )
    else:
        print("verdicts    : none — steady state held")
    if report.crash_dump:
        print(f"crash dump  : {report.crash_dump}")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"json        : {args.json_out}")
    return 0 if report.ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.machine.session import CaratSession, RunConfig
    from repro.sanitizer import Sanitizer
    from repro.workloads import all_workloads, get_workload

    if args.name is None:
        workloads = all_workloads(args.scale)
    else:
        workloads = [get_workload(args.name, args.scale)]
    modes = ["carat", "traditional"] if args.mode == "both" else [args.mode]

    failures = 0
    print(f"{'workload':14s} {'mode':12s} {'checks':>7s} {'errors':>7s} "
          f"{'warnings':>9s} verdict")
    for workload in workloads:
        for mode in modes:
            sanitizer = Sanitizer(raise_on_violation=False)
            setup = None
            if mode == "carat":
                setup = lambda i: i.set_tick_interval(args.tick_interval)
            config = RunConfig.from_args(args, mode=mode, name=workload.name)
            session = CaratSession(config, sanitizer=sanitizer, setup=setup)
            result = session.run(workload.source)
            report = sanitizer.report
            verdict = "clean" if sanitizer.ok else "VIOLATIONS"
            if not sanitizer.ok or result.exit_code != 0:
                failures += 1
            print(
                f"{workload.name:14s} {mode:12s} {sanitizer.checks_run:7d} "
                f"{len(report.errors):7d} {len(report.warnings):9d} {verdict}"
            )
            for violation in report.violations:
                print(f"    {violation.describe()}")
    if failures:
        print(f"{failures} audited run(s) failed")
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.machine.session import CaratSession, RunConfig
    from repro.telemetry import validate_jsonl

    source, name = _resolve_program(args)
    config = RunConfig.from_args(
        args, name=name, trace=True, trace_out=args.out
    )
    result = CaratSession(config).run(source)
    tracer = result.tracer
    summary = tracer.summary()
    jsonl_path = f"{args.out}.jsonl"
    chrome_path = f"{args.out}.chrome.json"
    errors = validate_jsonl(jsonl_path)
    print(f"workload    : {name} ({config.mode}, {config.engine})")
    print(f"output      : {result.output[-1] if result.output else ''}")
    categories = ", ".join(
        f"{cat} {count}"
        for cat, count in sorted(summary.items())
        if cat not in ("total", "dropped")
    )
    print(f"trace       : {summary['total']} events ({categories})")
    if tracer.dropped:
        print(f"dropped     : {tracer.dropped} events (buffer full)")
    print(f"jsonl       : {jsonl_path}")
    print(f"chrome      : {chrome_path}")
    if errors:
        print(f"schema      : INVALID ({len(errors)} errors)")
        for error in errors[:10]:
            print(f"    {error}")
        return 1
    print("schema      : valid")
    if result.profile is not None:
        result.profile.assert_reconciles(result.stats)
        print()
        print(result.profile.report())
    return result.exit_code


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.machine.session import CaratSession, RunConfig

    source, name = _resolve_program(args)
    config = RunConfig.from_args(args, name=name, profile=True)
    result = CaratSession(config).run(source)
    profile = result.profile
    profile.assert_reconciles(result.stats)
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
        return result.exit_code
    print(f"workload    : {name} ({config.mode}, {config.engine})")
    print(f"output      : {result.output[-1] if result.output else ''}")
    print(f"cycles      : {result.cycles} (buckets reconcile exactly)")
    print()
    print(profile.report())
    return result.exit_code


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads

    print(f"{'name':14s} {'suite':8s} behavior")
    for workload in all_workloads("tiny"):
        print(f"{workload.name:14s} {workload.suite:8s} {workload.behavior}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "compile": _cmd_compile,
        "run": _cmd_run,
        "bench": _cmd_bench,
        "policy": _cmd_policy,
        "smp": _cmd_smp,
        "soak": _cmd_soak,
        "sanitize": _cmd_sanitize,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "workloads": _cmd_workloads,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
